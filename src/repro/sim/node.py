"""Simulated nodes and their processing queues.

A :class:`Node` is a named endpoint in a region that receives messages from
the :class:`~repro.sim.network.Network`.  Server nodes additionally own a
:class:`ProcessingQueue`, a single-server FIFO that charges a service time to
every piece of work.  Under light load the queue adds only the service time;
as offered load approaches ``1 / service_time`` the queueing delay grows,
which is what produces the latency-vs-throughput curves in Figures 6 and 11.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.network import Message, Network
from repro.sim.scheduler import Scheduler


class ProcessingQueue:
    """Single-server FIFO work queue with deterministic service times."""

    __slots__ = ("_scheduler", "_busy_until", "jobs_processed", "busy_time")

    def __init__(self, scheduler: Scheduler) -> None:
        self._scheduler = scheduler
        self._busy_until = 0.0
        self.jobs_processed = 0
        self.busy_time = 0.0

    def submit(self, service_time_ms: float,
               fn: Callable[..., Any], *args: Any, **kwargs: Any) -> float:
        """Enqueue a job; ``fn`` runs when the server finishes it.

        Returns:
            The absolute simulated time at which the job will complete.
        """
        if service_time_ms < 0:
            raise ValueError("service time must be non-negative")
        now = self._scheduler.clock._now
        start = now if now > self._busy_until else self._busy_until
        finish = start + service_time_ms
        self._busy_until = finish
        self.jobs_processed += 1
        self.busy_time += service_time_ms
        # Queue jobs are never cancelled: take the no-handle fast path.
        self._scheduler.schedule_call_at(finish, fn, args, kwargs)
        return finish

    def queue_delay(self) -> float:
        """Time a job submitted right now would wait before service begins."""
        return max(0.0, self._busy_until - self._scheduler.now())

    def utilization(self, elapsed_ms: float) -> float:
        """Fraction of ``elapsed_ms`` the server spent busy."""
        if elapsed_ms <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed_ms)


class Node:
    """Base class for every simulated endpoint (replica, server, or client)."""

    def __init__(self, name: str, region: str, network: Network,
                 host: Optional[str] = None,
                 service_time_ms: float = 0.0) -> None:
        self.name = name
        self.region = region
        self.network = network
        self.scheduler = network.scheduler
        self.host = host if host is not None else name
        self.alive = True
        self.service_time_ms = service_time_ms
        #: Multiplier on every service time charged via :meth:`process`;
        #: fault injection raises it to model a slow (but live) replica.
        self.slowdown_factor = 1.0
        self.queue = ProcessingQueue(self.scheduler)
        #: message kind -> bound ``on_<kind>`` handler, filled on first
        #: dispatch (a ``getattr`` with string formatting per message adds
        #: up on the delivery hot path).
        self._handler_cache: dict = {}
        #: destination name -> network route entry, for the fused protocol
        #: fast path; revalidated against ``Network._route_epoch``.
        self._fused_routes: dict = {}
        self._fused_epoch = -1
        network.register(self)

    # -- lifecycle ---------------------------------------------------------
    def crash(self) -> None:
        """Stop the node: in-flight messages to it are dropped."""
        self.alive = False

    def recover(self) -> None:
        self.alive = True

    def slow_down(self, factor: float) -> None:
        """Scale all future service times by ``factor`` (≥ 1 slows the node)."""
        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        self.slowdown_factor = factor

    def restore_speed(self) -> None:
        self.slowdown_factor = 1.0

    # -- messaging ---------------------------------------------------------
    def send(self, dst: str, kind: str, payload: Optional[dict] = None,
             size_bytes: Optional[int] = None) -> Message:
        """Send a message to another node."""
        return self.network.send(self.name, dst, kind, payload, size_bytes)

    def send_many(self, sends) -> list:
        """Fan a burst of ``(dst, kind, payload, size_bytes)`` tuples out.

        Equivalent to :meth:`send` per tuple, but same-instant deliveries
        share one batched scheduler entry (the replica fan-out fast path).
        """
        return self.network.send_many(self.name, sends)

    def handle_message(self, message: Message) -> None:
        """Dispatch an incoming message to ``on_<kind>`` if defined.

        The network delivers through :attr:`_handler_cache` directly once a
        kind has been resolved here, so dispatch work is paid once per kind.
        """
        kind = message.kind
        handler = self._handler_cache.get(kind)
        if handler is None:
            handler = getattr(self, f"on_{kind}", None)
            if handler is None:
                raise NotImplementedError(
                    f"{type(self).__name__} ({self.name}) has no handler for "
                    f"message kind '{message.kind}'"
                )
            self._handler_cache[kind] = handler
        handler(message)

    # -- local work --------------------------------------------------------
    def process(self, fn: Callable[..., Any], *args: Any,
                service_time_ms: Optional[float] = None,
                **kwargs: Any) -> float:
        """Run ``fn`` after this node's processing queue serves the job.

        Inlines :meth:`ProcessingQueue.submit` — every handled message goes
        through here, and the extra call layer is measurable.
        """
        cost = self.service_time_ms if service_time_ms is None else service_time_ms
        cost *= self.slowdown_factor
        if cost < 0:
            raise ValueError("service time must be non-negative")
        queue = self.queue
        scheduler = queue._scheduler
        now = scheduler.clock._now
        busy = queue._busy_until
        start = now if now > busy else busy
        finish = start + cost
        queue._busy_until = finish
        queue.jobs_processed += 1
        queue.busy_time += cost
        scheduler.schedule_call_at(finish, fn, args, kwargs or None)
        return finish

    # -- fused fast path ----------------------------------------------------
    def _fused_route_to(self, dst: str) -> list:
        """Cached network route from this node to ``dst`` (fused sends).

        One dict probe per send once warm; the whole cache is dropped when
        the network invalidates its route table (topology edit, membership
        change, ``reset_stats``), so entries can never alias retired stats
        objects or byte cells.
        """
        network = self.network
        # Network.fused_epoch, inlined (one call frame per hop matters).
        if network.topology._version != network._topo_version:
            network._sync_topology()
        epoch = network._route_epoch
        if self._fused_epoch != epoch:
            self._fused_routes.clear()
            self._fused_epoch = epoch
        route = self._fused_routes.get(dst)
        if route is None:
            route = network.fused_route(self.name, dst)
            self._fused_routes[dst] = route
        return route

    def _enqueue(self, service_time_ms: float, fn: Callable[..., Any],
                 args: tuple) -> None:
        """Fused-path :meth:`process`: no kwargs, no finish-time return.

        The scheduler insert is inlined too (``finish >= now`` holds by
        construction, so the past-check is redundant here) — queue jobs are
        one of the two dominant event classes.
        """
        cost = service_time_ms * self.slowdown_factor
        queue = self.queue
        scheduler = queue._scheduler
        now = scheduler.clock._now
        busy = queue._busy_until
        start = now if now > busy else busy
        finish = start + cost
        queue._busy_until = finish
        queue.jobs_processed += 1
        queue.busy_time += cost
        seq = scheduler._seq
        scheduler._seq = seq + 1
        scheduler._live += 1
        if finish < scheduler._horizon:
            tick = int(finish * scheduler._wheel_inv)
            if tick == scheduler._cursor:
                heapq.heappush(scheduler._slots[tick & scheduler._wheel_mask],
                               (finish, seq, fn, args, None, None))
            else:
                scheduler._slots[tick & scheduler._wheel_mask].append(
                    (finish, seq, fn, args, None, None))
                scheduler._wheel_count += 1
        else:
            heapq.heappush(scheduler._heap,
                           (finish, seq, fn, args, None, None))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, region={self.region!r})"
