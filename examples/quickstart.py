#!/usr/bin/env python
"""Quickstart: invoke_weak / invoke_strong / invoke on a replicated key.

This example runs entirely on the simulated Cassandra cluster (three replicas
in Frankfurt, Ireland and Virginia, as in the paper's evaluation), and shows
the three API methods of Section 3.2:

* ``invoke_weak``   — one fast, possibly stale view;
* ``invoke_strong`` — one slower, quorum-consistent view;
* ``invoke``        — incremental consistency guarantees: a preliminary view
  followed by the final view on the same Correctable.

Run with::

    python examples/quickstart.py
"""

from repro.bindings.cassandra import CassandraBinding
from repro.cassandra_sim.cluster import CassandraCluster
from repro.cassandra_sim.config import CassandraConfig
from repro.core import CorrectableClient, read, write
from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region


def main() -> None:
    # 1. Build the replicated storage substrate (simulated WAN deployment).
    env = SimEnvironment(seed=2024)
    cluster = CassandraCluster(env, CassandraConfig())
    cluster.preload({"greeting": "hello from the preloaded state"})

    # 2. Connect a client in Ireland to the Frankfurt coordinator and wrap it
    #    in the Correctables library.
    node = cluster.add_client("quickstart-client", region=Region.IRL,
                              contact_region=Region.FRK)
    client = CorrectableClient(CassandraBinding(node, strong_read_quorum=2))

    # 3. A weakly consistent read: one view, low latency.
    weak = client.invoke_weak(read("greeting"))
    weak.on_final(lambda view: print(
        f"[invoke_weak]   {view.value!r}  ({view.consistency}, "
        f"t={view.timestamp:.1f} ms)"))

    # 4. A strongly consistent read: one view, quorum latency.
    strong = client.invoke_strong(read("greeting"))
    strong.on_final(lambda view: print(
        f"[invoke_strong] {view.value!r}  ({view.consistency}, "
        f"t={view.timestamp:.1f} ms)"))

    # 5. An ICG read: the same operation delivers both views, one by one.
    icg = client.invoke(read("greeting"))
    icg.set_callbacks(
        on_update=lambda view: print(
            f"[invoke]        preliminary {view.value!r} after "
            f"{view.timestamp:.1f} ms"),
        on_final=lambda view: print(
            f"[invoke]        final       {view.value!r} after "
            f"{view.timestamp:.1f} ms"),
    )

    # 6. Writes look the same; the strong view is the coordinator's ack.
    client.invoke_strong(write("greeting", "updated value")) \
        .on_final(lambda view: print(f"[write]         acknowledged "
                                     f"at t={view.timestamp:.1f} ms"))

    # Drive the simulation until every callback has fired.
    env.run_until_idle()

    follow_up = client.invoke_strong(read("greeting"))
    follow_up.on_final(lambda view: print(
        f"[read-after-write] {view.value!r}"))
    env.run_until_idle()


if __name__ == "__main__":
    main()
