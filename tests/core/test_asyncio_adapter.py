"""Tests for the asyncio bridge."""

import asyncio

import pytest

from repro.bindings.local import LocalBinding
from repro.core.asyncio_adapter import final_value, promise_to_future, view_stream
from repro.core.client import CorrectableClient
from repro.core.consistency import STRONG, WEAK
from repro.core.correctable import Correctable
from repro.core.errors import OperationError
from repro.core.operations import read, write
from repro.core.promise import Promise
from repro.sim.scheduler import Scheduler
from repro.workloads.arrivals import UniformArrivals
from repro.workloads.records import Dataset
from repro.workloads.runner import OpenLoopRunner
from repro.workloads.ycsb import WORKLOAD_A, OperationGenerator


def _run(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


class TestPromiseToFuture:
    def test_resolved_promise(self):
        async def scenario():
            promise = Promise.resolved(5)
            return await promise_to_future(promise)

        assert _run(scenario()) == 5

    def test_promise_resolved_later(self):
        async def scenario():
            promise = Promise()
            loop = asyncio.get_event_loop()
            loop.call_soon(promise.resolve, "later")
            return await promise_to_future(promise)

        assert _run(scenario()) == "later"

    def test_failed_promise_raises(self):
        async def scenario():
            promise = Promise.failed(OperationError("x"))
            return await promise_to_future(promise)

        with pytest.raises(OperationError):
            _run(scenario())


class TestFinalValue:
    def test_final_value_awaits_close(self):
        async def scenario():
            correctable = Correctable()
            loop = asyncio.get_event_loop()
            loop.call_soon(correctable.update, "weak", WEAK)
            loop.call_soon(correctable.close, "strong", STRONG)
            return await final_value(correctable)

        assert _run(scenario()) == "strong"


class TestViewStream:
    def test_yields_all_views_in_order(self):
        async def scenario():
            correctable = Correctable()
            loop = asyncio.get_event_loop()
            loop.call_soon(correctable.update, "a", WEAK)
            loop.call_soon(correctable.update, "b", WEAK)
            loop.call_soon(correctable.close, "c", STRONG)
            return [view.value async for view in view_stream(correctable)]

        assert _run(scenario()) == ["a", "b", "c"]

    def test_stream_raises_on_error(self):
        async def scenario():
            correctable = Correctable()
            loop = asyncio.get_event_loop()
            loop.call_soon(correctable.fail, OperationError("down"))
            return [view.value async for view in view_stream(correctable)]

        with pytest.raises(OperationError):
            _run(scenario())

    def test_already_closed_correctable_streams_history(self):
        async def scenario():
            correctable = Correctable()
            correctable.update("a", WEAK)
            correctable.close("b", STRONG)
            return [view.value async for view in view_stream(correctable)]

        assert _run(scenario()) == ["a", "b"]


class TestOpenLoopEndToEnd:
    """An :class:`OpenLoopRunner` whose completions flow through asyncio.

    Every operation runs the full stack — arrival process → session pool →
    ``CorrectableClient`` → ``LocalBinding`` on a simulated scheduler — but
    the views are *consumed* with the asyncio adapter (``view_stream`` for
    reads, ``final_value`` for updates) instead of raw callbacks, and the
    runner's ``done`` fires only once the awaitable side finishes.  The
    driver interleaves simulated time with asyncio turns the way a real
    deployment interleaves I/O with an event loop.
    """

    RATE_OPS_S = 100.0
    STEP_MS = 5.0

    def _build(self, seed=42):
        scheduler = Scheduler()
        binding = LocalBinding(scheduler=scheduler, weak_delay_ms=2.0,
                               strong_delay_ms=20.0)
        pool = CorrectableClient(binding).sessions(8)
        dataset = Dataset(record_count=20, seed=seed)
        for key, value in dataset.initial_items().items():
            binding.store.put(key, value)
        completions = []

        def issue(op_type, key, value, done):
            session = pool.next_session()
            issued_at = scheduler.now()

            async def consume():
                if op_type == "update":
                    final = await final_value(session.invoke_strong(
                        write(key, value)))
                    views = 1
                else:
                    views = 0
                    async for view in view_stream(session.invoke(read(key))):
                        views += 1
                        final = view.value
                completions.append((op_type, key, views, final))
                done({"final_latency_ms": scheduler.now() - issued_at})

            asyncio.ensure_future(consume())

        runner = OpenLoopRunner(
            scheduler=scheduler, issue=issue,
            make_generator=lambda i: OperationGenerator.seeded(
                WORKLOAD_A, dataset, seed, f"aio-{i}"),
            arrivals=UniformArrivals(self.RATE_OPS_S), sessions=8,
            duration_ms=1_200.0, warmup_ms=200.0, cooldown_ms=100.0,
            label="asyncio-open-loop")
        return scheduler, pool, runner, completions

    async def _drive(self, scheduler, runner):
        """Advance simulated time in slices, draining asyncio in between."""
        runner.start()
        end = runner.end_time + runner.drain_ms
        while scheduler.now() < end:
            scheduler.run(until=min(scheduler.now() + self.STEP_MS, end))
            # A completion crosses promise -> future -> coroutine -> done;
            # a few zero-delay turns let the whole chain settle.
            for _ in range(4):
                await asyncio.sleep(0)

    def test_open_loop_run_through_adapter(self):
        async def scenario():
            scheduler, pool, runner, completions = self._build()
            await self._drive(scheduler, runner)
            return pool, runner, completions

        pool, runner, completions = _run(scenario())
        result = runner.result
        admission = result.admission
        # Every arrival was admitted (no bound), issued through a session,
        # and completed through the adapter exactly once.
        assert admission.offered > 0
        assert admission.shed == 0
        assert len(completions) == admission.admitted == result.total_ops
        assert pool.total_invocations() == admission.admitted
        assert runner._in_flight == 0
        # ICG reads stream a weak and a strong view; updates close in one.
        for op_type, _key, views, final in completions:
            assert views == (1 if op_type == "update" else 2)
            assert final is not None
        # The open loop held its offered rate and measured sane latencies
        # (service is 20 ms; the driver quantizes completion to 5 ms steps).
        assert result.offered_ops_per_sec() == pytest.approx(
            self.RATE_OPS_S, rel=0.1)
        assert result.measured_ops > 0
        assert 20.0 <= result.final_latency.mean() <= 20.0 + 2 * self.STEP_MS

    def test_adapter_driven_run_is_deterministic(self):
        def fingerprint():
            async def scenario():
                scheduler, _pool, runner, completions = self._build(seed=7)
                await self._drive(scheduler, runner)
                return (runner.result.total_ops, runner.result.measured_ops,
                        [c[:3] for c in completions])

            return _run(scenario())

        assert fingerprint() == fingerprint()
