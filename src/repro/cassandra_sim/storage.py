"""Per-replica storage engine: a last-write-wins versioned table."""

from __future__ import annotations

from typing import Dict, Optional

from repro.cassandra_sim.versions import VersionedValue


class LocalTable:
    """The key-value state one replica holds locally."""

    def __init__(self) -> None:
        self._rows: Dict[str, VersionedValue] = {}
        self.reads = 0
        self.writes_applied = 0
        self.writes_ignored = 0

    def read(self, key: str) -> Optional[VersionedValue]:
        """Return the locally stored version of ``key`` (None if absent)."""
        self.reads += 1
        return self._rows.get(key)

    def apply(self, key: str, version: VersionedValue) -> bool:
        """Apply a write if it is newer than the stored version (LWW).

        Returns True when the write was applied, False when it was stale and
        therefore ignored.
        """
        current = self._rows.get(key)
        if version.newer_than(current):
            self._rows[key] = version
            self.writes_applied += 1
            return True
        self.writes_ignored += 1
        return False

    def contains(self, key: str) -> bool:
        return key in self._rows

    def __len__(self) -> int:
        return len(self._rows)
