"""Bridging Correctables to ``asyncio``.

The simulator drives Correctables with plain callbacks, but real deployments
(the paper's prototype sits on top of the DataStax driver's futures) are more
naturally consumed with ``async``/``await``.  These helpers convert a
Correctable into awaitable objects:

* :func:`final_value` — await the final value;
* :func:`view_stream` — an async iterator yielding every view, final last;
* :func:`promise_to_future` — convert a bare :class:`Promise`.
"""

from __future__ import annotations

import asyncio
from typing import Any, AsyncIterator, Optional

from repro.core.correctable import Correctable
from repro.core.promise import Promise
from repro.core.views import View


def promise_to_future(promise: Promise,
                      loop: Optional[asyncio.AbstractEventLoop] = None
                      ) -> "asyncio.Future[Any]":
    """Return an ``asyncio.Future`` resolved/rejected with the promise."""
    loop = loop or asyncio.get_event_loop()
    future: "asyncio.Future[Any]" = loop.create_future()

    def _resolve(value: Any) -> None:
        if not future.done():
            loop.call_soon_threadsafe(
                lambda: None if future.done() else future.set_result(value))

    def _reject(error: BaseException) -> None:
        if not future.done():
            loop.call_soon_threadsafe(
                lambda: None if future.done() else future.set_exception(error))

    promise.on_ready(_resolve)
    promise.on_error(_reject)
    return future


async def final_value(correctable: Correctable) -> Any:
    """Await the final value of a Correctable."""
    return await promise_to_future(correctable.final_promise())


async def view_stream(correctable: Correctable) -> AsyncIterator[View]:
    """Yield every view of a Correctable as it arrives (final view last).

    Raises the Correctable's error if it closes with one.
    """
    loop = asyncio.get_event_loop()
    queue: "asyncio.Queue[tuple]" = asyncio.Queue()

    def _push(kind: str, payload: Any) -> None:
        loop.call_soon_threadsafe(queue.put_nowait, (kind, payload))

    correctable.set_callbacks(
        on_update=lambda view: _push("update", view),
        on_final=lambda view: _push("final", view),
        on_error=lambda exc: _push("error", exc),
    )
    while True:
        kind, payload = await queue.get()
        if kind == "error":
            raise payload
        yield payload
        if kind == "final":
            return
