"""Primary-backup binding (Listing 7 of the paper).

:class:`PrimaryBackupStore` keeps an authoritative *primary* copy and a
*backup* copy that lags behind by a configurable replication delay.
:class:`PrimaryBackupBinding` maps ``WEAK`` to the closest backup and
``STRONG`` to the primary, exactly like the paper's example binding
(``queryClosestBackup`` / ``queryPrimary``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.bindings.base import Binding, CallbackType
from repro.core.consistency import ConsistencyLevel, STRONG, WEAK
from repro.core.errors import OperationError
from repro.core.operations import Operation
from repro.sim.scheduler import Scheduler


class PrimaryBackupStore:
    """A two-copy store: writes hit the primary and reach the backup later."""

    def __init__(self, scheduler: Optional[Scheduler] = None,
                 replication_lag_ms: float = 30.0) -> None:
        self.scheduler = scheduler
        self.replication_lag_ms = replication_lag_ms
        self._primary: Dict[str, Any] = {}
        self._backup: Dict[str, Any] = {}
        self.writes = 0
        self.pending_replications = 0

    def write(self, key: str, value: Any) -> None:
        """Apply a write to the primary and propagate to the backup (lagged)."""
        self.writes += 1
        self._primary[key] = value
        if self.scheduler is None:
            self._backup[key] = value
            return
        self.pending_replications += 1
        self.scheduler.schedule(self.replication_lag_ms,
                                self._apply_backup, key, value)

    def _apply_backup(self, key: str, value: Any) -> None:
        self._backup[key] = value
        self.pending_replications -= 1

    def read_primary(self, key: str) -> Any:
        if key not in self._primary:
            raise OperationError(f"key not found on primary: {key!r}")
        return self._primary[key]

    def read_backup(self, key: str) -> Any:
        if key in self._backup:
            return self._backup[key]
        # A backup that has never heard of the key answers like the primary
        # would for a missing key.
        raise OperationError(f"key not found on backup: {key!r}")

    def backup_is_stale(self, key: str) -> bool:
        """Whether the backup currently lags the primary for ``key``."""
        return self._backup.get(key) != self._primary.get(key)


class PrimaryBackupBinding(Binding):
    """Two-level binding: WEAK → backup replica, STRONG → primary replica."""

    def __init__(self, store: Optional[PrimaryBackupStore] = None,
                 scheduler: Optional[Scheduler] = None,
                 backup_rtt_ms: float = 4.0,
                 primary_rtt_ms: float = 80.0) -> None:
        if store is None:
            store = PrimaryBackupStore(scheduler=scheduler)
        self.store = store
        self.scheduler = scheduler if scheduler is not None else store.scheduler
        self.backup_rtt_ms = backup_rtt_ms
        self.primary_rtt_ms = primary_rtt_ms
        if self.scheduler is not None:
            self.clock = self.scheduler.now

    def consistency_levels(self) -> List[ConsistencyLevel]:
        return [WEAK, STRONG]

    def submit_operation(self, operation: Operation,
                         levels: List[ConsistencyLevel],
                         callback: CallbackType) -> None:
        levels = self.validate_levels(levels)
        if WEAK in levels:
            self._deliver(self.backup_rtt_ms, callback, WEAK, operation,
                          use_backup=True)
        if STRONG in levels:
            self._deliver(self.primary_rtt_ms, callback, STRONG, operation,
                          use_backup=False)

    def _deliver(self, delay_ms: float, callback: CallbackType,
                 level: ConsistencyLevel, operation: Operation,
                 use_backup: bool) -> None:
        def _run() -> None:
            try:
                value = self._execute(operation, use_backup=use_backup)
            except OperationError as exc:
                callback(level, None, error=exc)
                return
            replica = "backup" if use_backup else "primary"
            callback(level, value, metadata={"replica": replica})

        if self.scheduler is None:
            _run()
        else:
            self.scheduler.schedule(delay_ms, _run)

    def _execute(self, operation: Operation, use_backup: bool) -> Any:
        if operation.name == "read":
            if use_backup:
                return self.store.read_backup(operation.key)
            return self.store.read_primary(operation.key)
        if operation.name == "write":
            value = operation.args[0]
            if not use_backup:
                self.store.write(operation.key, value)
            return value
        raise self.unsupported_operation(operation)
