"""Configuration knobs for the simulated Cassandra cluster."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CassandraConfig:
    """Cluster-wide configuration.

    Service times model the CPU cost of handling a request at a replica; the
    coordinator pays ``preliminary_flush_ms`` extra for every ICG read, which
    is what produces Correctable Cassandra's throughput drop in Figure 6.
    """

    #: Number of replicas holding each key.
    replication_factor: int = 3
    #: CPU time a replica spends serving one read (ms).
    read_service_ms: float = 1.5
    #: CPU time a replica spends applying one write (ms).
    write_service_ms: float = 1.0
    #: Extra coordinator CPU time for flushing a preliminary response (ms).
    preliminary_flush_ms: float = 0.6
    #: Size of a full record returned by a read (bytes).  The single-request
    #: microbenchmark uses 100 B objects; the YCSB load/bandwidth experiments
    #: use the YCSB default of 10 fields × 100 B = 1000 B records.
    value_size_bytes: int = 100
    #: Size of a key on the wire (bytes).
    key_size_bytes: int = 20
    #: Per-response metadata overhead (bytes).
    response_overhead_bytes: int = 40
    #: Size of a confirmation message body (bytes), for the *CC optimization.
    confirmation_bytes: int = 10
    #: Whether final views identical to the preliminary are replaced by a
    #: small confirmation message (the ``*CC`` optimization of Section 5.2).
    confirmation_optimization: bool = False
    #: Whether quorum reads repair stale replicas afterwards.
    read_repair: bool = False
    #: Coordinator-side timeout for assembling a read quorum (ms); 0 disables
    #: timeouts entirely, which is the fault-free behaviour the paper's
    #: happy-path figures assume.
    read_timeout_ms: float = 0.0
    #: Coordinator-side timeout for assembling a write quorum (ms); 0 disables.
    write_timeout_ms: float = 0.0
    #: How many times the coordinator re-solicits missing replicas before
    #: giving up on the requested quorum.
    coordinator_retries: int = 1
    #: After the retries are exhausted, whether to answer the client with the
    #: responses gathered so far (a *downgraded* quorum) instead of an error.
    downgrade_on_timeout: bool = True
    #: Client-side timeout for one request (ms); 0 disables.  On expiry the
    #: client re-issues the request to a fallback coordinator (if it has any)
    #: and eventually reports an error.
    client_timeout_ms: float = 0.0
    #: How many times the client re-issues a timed-out request.
    client_retries: int = 2

    def quorum(self) -> int:
        """Majority quorum size for this replication factor."""
        return self.replication_factor // 2 + 1

    @classmethod
    def fault_tolerant(cls, **overrides) -> "CassandraConfig":
        """A configuration with the recovery paths enabled.

        Used by the fault experiments: coordinator timeouts with one retry
        then downgrade, client-side failover, and read repair so replicas
        reconverge after a crash or partition heals.
        """
        defaults = dict(
            read_repair=True,
            read_timeout_ms=250.0,
            write_timeout_ms=250.0,
            coordinator_retries=1,
            downgrade_on_timeout=True,
            client_timeout_ms=1_000.0,
            client_retries=2,
        )
        defaults.update(overrides)
        return cls(**defaults)
