"""Fault injection for the simulated storage stacks.

The paper's preliminary/final split only earns its keep when the storage
misbehaves: crashes, partitions, and slow replicas are what make preliminary
views diverge from final ones and what the protocol-level recovery paths
(coordinator timeouts, read repair, leader election) exist to survive.  This
package turns the latent ``crash``/``partition`` primitives of ``repro.sim``
into scripted, repeatable experiments:

* :class:`FaultEvent` / :class:`FaultSchedule` / :class:`Scenario` —
  declarative fault scripts with symbolic targets;
* :class:`FaultInjector` — binds a script to a live environment and replays
  it on the simulation clock (or applies faults imperatively);
* :mod:`repro.faults.scenarios` — a library of named scenarios
  (``replica-crash``, ``wan-partition``, ``flapping-link``,
  ``slow-follower``, ``degraded-link``, ``leader-crash``,
  ``coordinator-crash-mid-commit``, ``participant-crash-after-prepare``)
  used by the Figure 13 and Figure 16 fault benchmarks.
"""

from repro.faults.injector import AppliedFault, FaultInjector
from repro.faults.schedule import (
    FaultEvent,
    FaultSchedule,
    FaultScheduleBuilder,
    Scenario,
)
from repro.faults.scenarios import (
    SCENARIOS,
    cassandra_aliases,
    coordinator_crash_mid_commit,
    get_scenario,
    participant_crash_after_prepare,
    scenario_names,
    zookeeper_aliases,
)

__all__ = [
    "AppliedFault",
    "FaultInjector",
    "FaultEvent",
    "FaultSchedule",
    "FaultScheduleBuilder",
    "Scenario",
    "SCENARIOS",
    "cassandra_aliases",
    "coordinator_crash_mid_commit",
    "get_scenario",
    "participant_crash_after_prepare",
    "scenario_names",
    "zookeeper_aliases",
]
