"""Marks everything under ``tests/integration`` with the ``integration`` marker.

Registered in ``pyproject.toml``; select with ``-m integration`` or exclude
with ``-m "not integration"``.
"""

from __future__ import annotations

import pathlib

import pytest

_INTEGRATION_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(config, items):
    for item in items:
        if _INTEGRATION_DIR in pathlib.Path(str(item.fspath)).parents:
            item.add_marker(pytest.mark.integration)
