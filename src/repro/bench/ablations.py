"""Ablation studies for the design choices DESIGN.md calls out.

* :func:`run_ticket_threshold_ablation` — how the ticket shop's "wait for the
  final view below N remaining tickets" threshold trades purchase latency
  against overselling risk (Listing 5's THRESHOLD).
* :func:`run_view_count_ablation` — the value of a third (cached) view for
  the news reader: time to first displayed view and number of refreshes with
  two views (backup + primary) versus three (cache + backup + primary).
* :func:`run_confirmation_optimization_ablation` — bytes per operation of
  CC2 with and without the ``*CC`` confirmation optimization under a
  high-divergence workload (complements Figure 8).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.bench.fig08_bandwidth import _measure_bandwidth
from repro.bench.fig12_tickets import _sell_out
from repro.bench.sweep import JobsSpec, SweepPoint, make_points, run_sweep
from repro.bindings.cached_store import CachedStoreBinding
from repro.bindings.primary_backup import PrimaryBackupBinding, PrimaryBackupStore
from repro.apps.news import NewsReader
from repro.core.client import CorrectableClient
from repro.metrics.summary import format_table
from repro.sim.scheduler import Scheduler


def _ticket_threshold_point(point: SweepPoint) -> Dict:
    outcome = _sell_out("CZK", **point.kwargs)
    return {
        "threshold": point.kwargs["threshold"],
        "mean_latency_ms": (
            sum(e["latency_ms"] for e in outcome["series"])
            / max(1, len(outcome["series"]))),
        "preliminary_purchases": outcome["preliminary_purchases"],
        "tickets_sold": outcome["tickets_sold"],
        "oversold": outcome["oversold"],
    }


def run_ticket_threshold_ablation(thresholds: Sequence[int] = (0, 5, 20, 60),
                                  stock: int = 200, retailers: int = 4,
                                  seed: int = 42,
                                  jobs: JobsSpec = 1) -> List[Dict]:
    """Sweep the stock threshold below which retailers wait for the final view."""
    points = make_points("ablation-ticket-threshold", (
        ({"threshold": threshold},
         dict(stock=stock, retailers=retailers, threshold=threshold,
              seed=seed))
        for threshold in thresholds))
    return run_sweep(points, _ticket_threshold_point, jobs=jobs).records()


def format_ticket_threshold_ablation(records: List[Dict]) -> str:
    rows = [[r["threshold"], r["mean_latency_ms"], r["preliminary_purchases"],
             r["tickets_sold"], r["oversold"]] for r in records]
    return format_table(
        ["threshold", "mean latency (ms)", "prelim purchases", "sold",
         "oversold"],
        rows, title="Ablation — ticket-shop final-view threshold")


def _view_count_point(point: SweepPoint) -> Dict:
    return _measure_view_count(label=point.kwargs["label"],
                               use_cache=point.kwargs["use_cache"],
                               news_items=point.kwargs["news_items"],
                               reads=point.kwargs["reads"])


def run_view_count_ablation(news_items: int = 10, reads: int = 50,
                            jobs: JobsSpec = 1) -> List[Dict]:
    """Compare two-view and three-view (cache-fronted) news reading."""
    points = make_points("ablation-view-count", (
        ({"configuration": label},
         dict(label=label, use_cache=use_cache, news_items=news_items,
              reads=reads))
        for label, use_cache in (("2 views (backup+primary)", False),
                                 ("3 views (cache+backup+primary)", True))))
    return run_sweep(points, _view_count_point, jobs=jobs).records()


def _measure_view_count(label: str, use_cache: bool, news_items: int,
                        reads: int) -> Dict:
    """Measure one news-reader configuration (2 or 3 incremental views)."""
    scheduler = Scheduler()
    store = PrimaryBackupStore(scheduler=scheduler, replication_lag_ms=30.0)
    binding = PrimaryBackupBinding(store, scheduler=scheduler,
                                   backup_rtt_ms=20.0, primary_rtt_ms=90.0)
    if use_cache:
        binding = CachedStoreBinding(binding, scheduler=scheduler,
                                     cache_latency_ms=0.5)
    reader = NewsReader(CorrectableClient(binding))
    reader.publish([f"story-{i}" for i in range(news_items)])
    scheduler.run_until_idle()

    first_view_latencies: List[float] = []
    for _ in range(reads):
        start = scheduler.now()
        seen: List[float] = []
        reader.get_latest_news(
            refresh=lambda items, level, s=start, seen=seen:
            seen.append(scheduler.now() - s))
        scheduler.run_until_idle()
        if seen:
            first_view_latencies.append(seen[0])
    return {
        "configuration": label,
        "mean_first_view_ms": (sum(first_view_latencies)
                               / max(1, len(first_view_latencies))),
        "refreshes_per_read": reader.refreshes / reads,
    }


def format_view_count_ablation(records: List[Dict]) -> str:
    rows = [[r["configuration"], r["mean_first_view_ms"],
             r["refreshes_per_read"]] for r in records]
    return format_table(
        ["configuration", "mean first-view latency (ms)", "views per read"],
        rows, title="Ablation — number of incremental views (news reader)")


def _confirmation_point(point: SweepPoint) -> Dict:
    return _measure_bandwidth(**point.kwargs)


def run_confirmation_optimization_ablation(
        threads: int = 10, duration_ms: float = 6_000.0,
        seed: int = 42, jobs: JobsSpec = 1) -> List[Dict]:
    """CC2 vs *CC2 bytes/op under the high-divergence A-Latest workload."""
    points = make_points("ablation-confirmation", (
        ({"system": system},
         dict(system=system, workload_name="A", distribution="latest",
              threads=threads, duration_ms=duration_ms,
              warmup_ms=duration_ms * 0.25, cooldown_ms=duration_ms * 0.125,
              record_count=1_000, seed=seed))
        for system in ("CC2", "*CC2")))
    return run_sweep(points, _confirmation_point, jobs=jobs).records()


def format_confirmation_optimization_ablation(records: List[Dict]) -> str:
    rows = [[r["system"], r["kb_per_op"], r["divergence_pct"]] for r in records]
    return format_table(["system", "kB/op", "divergence (%)"], rows,
                        title="Ablation — the *CC confirmation optimization")
