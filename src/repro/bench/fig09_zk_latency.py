"""Figure 9: latency gaps for queue operations in Correctable ZooKeeper.

A client in Ireland enqueues small elements under four ensemble
configurations — the leader in Ireland or Virginia, the client connected
either to a follower or to the leader.  Shapes to reproduce:

* the preliminary latency equals the RTT between the client and the server
  it is connected to (≈2 ms when colocated in IRL, ≈20 ms to FRK, ≈83 ms to
  VRG);
* the final latency matches vanilla ZooKeeper for the same configuration;
* the most dramatic gap appears when the client talks to a nearby follower
  while the leader is far away (leader in VRG, follower in IRL).

The same harness also reports the enqueue bandwidth overhead the paper
quotes in Section 6.2.2 (roughly +50 %, one extra preliminary response).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.bench.sweep import JobsSpec, SweepPoint, make_points, run_sweep
from repro.metrics.bandwidth import BandwidthProbe
from repro.metrics.latency import LatencyRecorder
from repro.metrics.summary import format_table
from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region
from repro.zookeeper_sim.cluster import ZooKeeperCluster

#: (label, leader region, region of the server the client connects to).
DEFAULT_CONFIGURATIONS: Tuple[Tuple[str, str, str], ...] = (
    ("follower-FRK / leader-IRL", Region.IRL, Region.FRK),
    ("leader-IRL / leader-IRL", Region.IRL, Region.IRL),
    ("follower-IRL / leader-VRG", Region.VRG, Region.IRL),
    ("leader-VRG / leader-VRG", Region.VRG, Region.VRG),
)


def _other_regions(leader_region: str) -> List[str]:
    return [r for r in (Region.IRL, Region.FRK, Region.VRG)
            if r != leader_region]


def _measure_enqueues(leader_region: str, connect_region: str, icg: bool,
                      samples: int, seed: int) -> Dict:
    env = SimEnvironment(seed=seed)
    cluster = ZooKeeperCluster(env, leader_region=leader_region,
                               follower_regions=_other_regions(leader_region))
    client = cluster.add_client("zk-bench-client", region=Region.IRL,
                                connect_region=connect_region)
    for server in cluster.servers:
        server.tree.create("/queue")

    probe = BandwidthProbe(env.network, [client.name],
                           [s.name for s in cluster.servers])
    probe.start()
    preliminary = LatencyRecorder("preliminary")
    final = LatencyRecorder("final")
    state = {"remaining": samples}

    def _issue_next() -> None:
        if state["remaining"] <= 0:
            return
        state["remaining"] -= 1
        element = f"element-{state['remaining']}"
        client.enqueue(
            "/queue", element, icg=icg,
            on_preliminary=lambda resp: preliminary.record(resp["latency_ms"]),
            on_final=lambda resp: (final.record(resp["latency_ms"]),
                                   _issue_next()))

    _issue_next()
    env.run_until_idle()
    probe.stop()
    return {
        "preliminary": preliminary.summary() if preliminary.count else None,
        "final": final.summary(),
        "bytes_per_op": probe.bytes_transferred() / max(1, final.count),
    }


def build_fig09_points(configurations: Iterable = DEFAULT_CONFIGURATIONS,
                       samples: int = 100, seed: int = 42) -> List[SweepPoint]:
    """One sweep point per ensemble configuration (CZK + ZK runs inside)."""
    return make_points("fig09", (
        ({"configuration": label},
         dict(label=label, leader_region=leader_region,
              connect_region=connect_region, samples=samples, seed=seed))
        for label, leader_region, connect_region in configurations))


def run_fig09_point(point: SweepPoint) -> Dict:
    """Measure one configuration: CZK (ICG) and vanilla ZK back to back."""
    kwargs = point.kwargs
    leader_region = kwargs["leader_region"]
    connect_region = kwargs["connect_region"]
    czk = _measure_enqueues(leader_region, connect_region, icg=True,
                            samples=kwargs["samples"], seed=kwargs["seed"])
    zk = _measure_enqueues(leader_region, connect_region, icg=False,
                           samples=kwargs["samples"], seed=kwargs["seed"])
    return {
        "configuration": kwargs["label"],
        "leader_region": leader_region,
        "connect_region": connect_region,
        "czk_preliminary_ms": czk["preliminary"]["mean_ms"],
        "czk_final_ms": czk["final"]["mean_ms"],
        "czk_final_p99_ms": czk["final"]["p99_ms"],
        "zk_final_ms": zk["final"]["mean_ms"],
        "czk_bytes_per_op": czk["bytes_per_op"],
        "zk_bytes_per_op": zk["bytes_per_op"],
        "latency_gap_ms": czk["final"]["mean_ms"] - czk["preliminary"]["mean_ms"],
    }


def run_fig09(configurations: Iterable = DEFAULT_CONFIGURATIONS,
              samples: int = 100, seed: int = 42,
              jobs: JobsSpec = 1) -> List[Dict]:
    """Regenerate the Figure 9 latency-gap comparison (CZK vs ZK).

    Returns one record per configuration, containing the Correctable
    ZooKeeper preliminary/final summaries, the vanilla ZooKeeper summary, and
    the enqueue bytes-per-operation of both systems.
    """
    points = build_fig09_points(configurations=configurations,
                                samples=samples, seed=seed)
    return run_sweep(points, run_fig09_point, jobs=jobs).records()


def format_fig09(records: List[Dict]) -> str:
    rows = [[r["configuration"], r["czk_preliminary_ms"], r["czk_final_ms"],
             r["zk_final_ms"], r["latency_gap_ms"],
             r["czk_bytes_per_op"], r["zk_bytes_per_op"]] for r in records]
    return format_table(
        ["configuration", "CZK prelim (ms)", "CZK final (ms)", "ZK (ms)",
         "gap (ms)", "CZK B/op", "ZK B/op"],
        rows,
        title="Figure 9 — ZooKeeper enqueue latency gaps (client in IRL)")
