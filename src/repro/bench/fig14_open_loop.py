"""Figure 14 (beyond the paper): open-loop load and saturation.

Every other figure drives the stores with closed-loop YCSB threads, which by
construction cannot overload anything: each thread waits for its previous
operation before issuing the next.  This harness measures the regime the
paper's motivation actually talks about — *offered* load from many
independent users — by replaying deterministic Poisson arrivals over a pool
of lightweight client sessions (:class:`repro.workloads.runner.OpenLoopRunner`
over :class:`repro.core.client.SessionPool`) and sweeping the offered rate
through each binding's saturation point.

Two bindings are driven through the full Correctables stack
(``CorrectableClient`` → binding → simulated store):

* **cassandra** — Correctable Cassandra (CC2): ICG reads deliver a
  preliminary (R=1) and a final (R=2) view; staleness is the divergence
  between them.
* **primary-backup** — the paper's Listing 7 binding: weak views come from
  a backup lagging ``replication_lag_ms`` behind the primary; staleness is
  how often the backup view disagrees with the primary's.

Admission control bounds each client at ``max_in_flight`` concurrent
operations, under two policies:

* ``queue`` — arrivals beyond the bound wait in a bounded FIFO; queue delay
  is accounted separately and dominates response time past saturation;
* ``shed``  — arrivals beyond the bound are dropped; response time stays
  flat while goodput plateaus and the shed fraction grows.

Each binding also gets a *closed-loop overlay* row (``max_in_flight``
closed-loop threads over the same sessions and issue path) so the table
directly shows what the closed loop hides: at the rates where its latency
looks fine, the open loop is already queueing or shedding.

Shapes to expect: below saturation, open-loop latency matches the closed
overlay and nothing is shed; past each binding's capacity
(≈ ``max_in_flight`` / service time), the ``queue`` rows' queue delay and
p99 explode while the ``shed`` rows keep latency flat and shed the excess;
staleness rises with load as views are read while updates are still
propagating.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.bench.common import cassandra_config_for
from repro.core.cluster_spec import ClusterSpec
from repro.bench.sweep import JobsSpec, SweepPoint, make_points, run_sweep
from repro.bindings.cassandra import CassandraBinding
from repro.bindings.primary_backup import (
    PrimaryBackupBinding,
    PrimaryBackupStore,
)
from repro.core.client import CorrectableClient, SessionPool
from repro.core.operations import read, write
from repro.metrics.summary import format_table
from repro.sim.environment import SimEnvironment
from repro.sim.rand import derive_rng
from repro.sim.topology import Region
from repro.workloads.arrivals import make_arrival_process
from repro.workloads.records import Dataset
from repro.workloads.runner import ClosedLoopRunner, OpenLoopRunner
from repro.workloads.ycsb import OperationGenerator, workload_by_name

DEFAULT_BINDINGS = ("cassandra", "primary-backup")
DEFAULT_POLICIES = ("queue", "shed")
#: Offered rates (ops/s) swept per binding; chosen to cross both bindings'
#: saturation points (≈480 ops/s for CC2, ≈200 ops/s for primary-backup at
#: the default ``max_in_flight=16``).
DEFAULT_RATES = (100, 200, 400, 800)


# ---------------------------------------------------------------------------
# binding setups: environment + CorrectableClient over the binding
# ---------------------------------------------------------------------------

def _setup_cassandra(seed: int, record_count: int):
    """A CC2 cluster with clients in two regions (distinct coordinators).

    Users behind different coordinators are what make preliminary views
    stale: a W=1 write acknowledged by one coordinator takes a WAN hop to
    reach the other, whose R=1 preliminaries read the old value meanwhile.
    """
    scenario = ClusterSpec(
        seed=seed, record_count=record_count,
        client_regions=(Region.IRL, Region.FRK),
        config=cassandra_config_for("CC2")).build()
    bindings = [CassandraBinding(scenario.client_in(region),
                                 strong_read_quorum=2, write_quorum=1)
                for region in (Region.IRL, Region.FRK)]
    return scenario.env, bindings, scenario.dataset


def _setup_primary_backup(seed: int, record_count: int,
                          replication_lag_ms: float = 30.0):
    """A primary/backup store preloaded on both copies."""
    env = SimEnvironment(seed=seed)
    store = PrimaryBackupStore(scheduler=env.scheduler,
                               replication_lag_ms=replication_lag_ms)
    binding = PrimaryBackupBinding(store=store, scheduler=env.scheduler)
    dataset = Dataset(record_count=record_count, value_size_bytes=100,
                      seed=seed)
    for key, value in dataset.initial_items().items():
        store.write(key, value)
    # Let the preload replicate so the first weak reads hit the backup.
    env.run(until=replication_lag_ms + 1.0)
    return env, [binding], dataset


_SETUPS = {
    "cassandra": _setup_cassandra,
    "primary-backup": _setup_primary_backup,
}


def setup_binding(name: str, seed: int, record_count: int):
    """Build one of the figure's stacks: ``(env, bindings, dataset)``.

    Public so the perf harness can drive the same stack it benchmarks.
    """
    try:
        setup = _SETUPS[name]
    except KeyError:
        raise KeyError(f"unknown fig14 binding {name!r}; "
                       f"choose from {list(_SETUPS)}") from None
    return setup(seed=seed, record_count=record_count)


def make_session_issue(pools: Sequence[SessionPool],
                       clock: Callable[[], float]) -> Callable:
    """The runner ``issue`` function: one session invocation per operation.

    Declares the optional fifth ``session_id`` parameter, so the open-loop
    runner hands over the session it chose for the operation and user ``k``
    maps structurally to client session ``k // regions`` in pool
    ``k % regions`` — the mapping can never drift from the runner's
    rotation, regardless of issue order or shedding.  Callers that do not
    pass a session (the closed-loop overlay) fall back to the same
    deterministic rotation over all sessions.  Reads request every level
    the binding offers (ICG), so a preliminary and a final view arrive and
    their disagreement is the staleness the figure reports; updates take
    the strong (authoritative) path only.
    """
    total_sessions = sum(len(pool) for pool in pools)
    rotation = {"next": 0}

    def _issue(op_type: str, key: str, value: Optional[str],
               done: Callable[[Dict[str, Any]], None],
               session_id: Optional[int] = None) -> None:
        if session_id is None:
            session_id = rotation["next"]
            rotation["next"] = (rotation["next"] + 1) % total_sessions
        pool = pools[session_id % len(pools)]
        session = pool.session(session_id // len(pools))
        issued_at = clock()
        if op_type == "update":
            session.invoke_strong(write(key, value)).set_callbacks(
                on_final=lambda view: done(
                    {"final_latency_ms": clock() - issued_at}),
                on_error=lambda exc: done({"failed": True}))
            return
        state: Dict[str, Any] = {"value": None, "latency": None,
                                 "had": False}

        def _on_update(view) -> None:
            state["had"] = True
            state["value"] = view.value
            state["latency"] = clock() - issued_at

        def _on_final(view) -> None:
            done({
                "final_latency_ms": clock() - issued_at,
                "preliminary_latency_ms": state["latency"],
                "had_preliminary": state["had"],
                "diverged": (state["had"] and not view.is_confirmation
                             and state["value"] != view.value),
            })

        session.invoke(read(key)).set_callbacks(
            on_update=_on_update, on_final=_on_final,
            on_error=lambda exc: done({"failed": True}))

    # Lean gate, static half: every pool must run over a binding exposing
    # the lean storage protocol (Cassandra's fused path) with the fault
    # machinery disarmed, all on one shared network.  Fixed at cluster
    # construction, so it is decided once here; the ``protocol.lean_ops``
    # kill-switch and fast-path flag can flip mid-run and stay in the
    # per-operation check below.
    storages = []
    for pool in pools:
        binding = getattr(pool.client, "binding", None)
        storage = getattr(binding, "client", None)
        config = getattr(storage, "config", None)
        if (config is None or not hasattr(storage, "lean_read")
                or len(storage._contacts) != 1
                or config.client_timeout_ms > 0
                or config.read_timeout_ms > 0
                or config.write_timeout_ms > 0 or config.read_repair):
            storages = []
            break
        storages.append(storage)
    lean_static = bool(storages) and len(
        {id(storage.network) for storage in storages}) == 1
    network = storages[0].network if lean_static else None

    def _lean(op_type: str, key: str, value: Optional[str], sink: Any,
              session_id: Optional[int] = None) -> bool:
        # The lean op pipeline (``protocol.lean_ops``): same session
        # rotation, same invocation counters, and the same fused wire
        # protocol as ``_issue`` above — but completions deliver
        # positionally into the runner's pooled sink, skipping the
        # Correctable, its View objects, and the per-op closures/dicts.
        # Returns False (with no side effects) to fall back to ``_issue``.
        if not (lean_static and network.lean_ops and network.fast_path):
            return False
        if session_id is None:
            session_id = rotation["next"]
            rotation["next"] = (rotation["next"] + 1) % total_sessions
        pool = pools[session_id % len(pools)]
        session = pool.session(session_id // len(pools))
        client = session.client
        binding = client.binding
        session.invocations += 1
        client.invocations += 1
        if op_type == "update":
            client.strong_invocations += 1
            binding.client.lean_write(key, value, w=binding.write_quorum,
                                      sink=sink)
        else:
            client.icg_invocations += 1
            sink._lean_icg = True
            binding.client.lean_read(key, r=binding.strong_read_quorum,
                                     icg=True, sink=sink)
        return True

    _issue.lean = _lean

    return _issue


# ---------------------------------------------------------------------------
# the session stack: one builder shared by the figure and the perf harness
# ---------------------------------------------------------------------------

@dataclass
class SessionStack:
    """One binding stack wrapped for session-multiplexed load.

    Built once per run by :func:`build_session_stack`; both this figure and
    the perf harness's ``fig14-open-loop`` scenario drive the same object,
    so the configuration they measure can never drift apart.
    """

    env: Any
    pools: List[SessionPool]
    dataset: Dataset
    spec: Any
    #: The runner-facing issue function (:func:`make_session_issue`).
    issue: Callable
    #: Effective user count: exactly as many as the pools hold, so the
    #: runner's session rotation and the pool rotation stay aligned (one
    #: step per issued operation) and each user maps to one stable
    #: session/region, even when the requested count doesn't divide.
    sessions: int


def build_session_stack(binding_name: str, *, seed: int, record_count: int,
                        sessions: int, workload: str = "A",
                        distribution: str = "latest") -> SessionStack:
    """Set up a binding and split ``sessions`` users over its client regions."""
    env, bindings, dataset = setup_binding(
        binding_name, seed=seed, record_count=record_count)
    per_pool = max(1, sessions // len(bindings))
    pools = [CorrectableClient(binding).sessions(per_pool)
             for binding in bindings]
    return SessionStack(
        env=env, pools=pools, dataset=dataset,
        spec=workload_by_name(workload).with_distribution(distribution),
        issue=make_session_issue(pools, env.scheduler.now),
        sessions=per_pool * len(bindings))


def make_session_generator(stack: SessionStack, seed: int,
                           label: str) -> Callable[[int], OperationGenerator]:
    """Per-session generators with independent label-derived key/mix streams."""
    return lambda session_id: OperationGenerator.seeded(
        stack.spec, stack.dataset, seed, f"{label}-s{session_id}")


def open_loop_runner(stack: SessionStack, *, seed: int, label: str,
                     rate_ops_s: float, duration_ms: float, warmup_ms: float,
                     cooldown_ms: float, max_in_flight: Optional[int],
                     policy: str, queue_limit: Optional[int],
                     arrivals: str = "poisson",
                     use_histograms: bool = False) -> OpenLoopRunner:
    """An :class:`OpenLoopRunner` over ``stack``, arrivals seeded from ``label``."""
    return OpenLoopRunner(
        scheduler=stack.env.scheduler, issue=stack.issue,
        make_generator=make_session_generator(stack, seed, label),
        arrivals=make_arrival_process(
            arrivals, rate_ops_s, derive_rng(seed, f"{label}:arrivals")),
        sessions=stack.sessions, duration_ms=duration_ms,
        warmup_ms=warmup_ms, cooldown_ms=cooldown_ms, label=label,
        max_in_flight=max_in_flight, policy=policy, queue_limit=queue_limit,
        use_histograms=use_histograms)


# ---------------------------------------------------------------------------
# one grid cell
# ---------------------------------------------------------------------------

def run_fig14_point(point: SweepPoint) -> Dict:
    """Run one (binding, mode, policy, rate) cell of the Figure 14 grid."""
    kwargs = point.kwargs
    binding_name = kwargs["binding"]
    mode = kwargs["mode"]
    seed = kwargs["seed"]
    stack = build_session_stack(
        binding_name, seed=seed, record_count=kwargs["record_count"],
        sessions=kwargs["sessions"], workload=kwargs["workload"],
        distribution=kwargs["distribution"])
    label = (f"fig14-{binding_name}-{mode}-{kwargs['policy']}"
             f"-{kwargs['rate_ops_s']}")

    if mode == "closed":
        runner: Any = ClosedLoopRunner(
            scheduler=stack.env.scheduler, issue=stack.issue,
            make_generator=make_session_generator(stack, seed, label),
            threads=kwargs["max_in_flight"],
            duration_ms=kwargs["duration_ms"],
            warmup_ms=kwargs["warmup_ms"],
            cooldown_ms=kwargs["cooldown_ms"],
            label=label)
    else:
        runner = open_loop_runner(
            stack, seed=seed, label=label,
            rate_ops_s=kwargs["rate_ops_s"], arrivals=kwargs["arrivals"],
            duration_ms=kwargs["duration_ms"],
            warmup_ms=kwargs["warmup_ms"],
            cooldown_ms=kwargs["cooldown_ms"],
            max_in_flight=kwargs["max_in_flight"],
            policy=kwargs["policy"],
            queue_limit=kwargs["queue_limit"])
    result = runner.run()
    admission = result.admission
    return {
        "binding": binding_name,
        "mode": mode,
        "policy": kwargs["policy"] if mode == "open" else "-",
        "arrivals": kwargs["arrivals"] if mode == "open" else "-",
        "offered_rate_ops_s": kwargs["rate_ops_s"] if mode == "open" else 0,
        "offered_ops_s": result.offered_ops_per_sec(),
        "throughput_ops_s": result.throughput_ops_per_sec(),
        "shed_pct": admission.shed_percent() if admission else 0.0,
        "queue_delay_mean_ms": (admission.queue_delay.mean()
                                if admission else 0.0),
        "queue_delay_p99_ms": (admission.queue_delay.p99()
                               if admission else 0.0),
        "preliminary_mean_ms": result.preliminary_latency.mean(),
        "final_mean_ms": result.final_latency.mean(),
        "final_p99_ms": result.final_latency.p99(),
        "staleness_pct": result.divergence.divergence_percent(),
        "measured_ops": result.measured_ops,
        "failed_ops": result.failed_ops,
        "sessions": stack.sessions,
        "max_in_flight": kwargs["max_in_flight"],
        "in_flight_high_water": (admission.in_flight_high_water
                                 if admission else kwargs["max_in_flight"]),
        "queue_high_water": admission.queue_high_water if admission else 0,
    }


# ---------------------------------------------------------------------------
# the grid
# ---------------------------------------------------------------------------

def build_fig14_points(bindings: Iterable[str] = DEFAULT_BINDINGS,
                       policies: Iterable[str] = DEFAULT_POLICIES,
                       rates: Sequence[float] = DEFAULT_RATES,
                       arrivals: str = "poisson",
                       sessions: int = 1_000,
                       max_in_flight: int = 16,
                       queue_limit: int = 64,
                       duration_ms: float = 10_000.0,
                       warmup_ms: float = 2_000.0,
                       cooldown_ms: float = 1_000.0,
                       record_count: int = 500,
                       workload: str = "A",
                       distribution: str = "latest",
                       seed: int = 42,
                       include_closed_loop: bool = True) -> List[SweepPoint]:
    """One closed-loop overlay row per binding, then the open-loop sweep."""
    base = dict(arrivals=arrivals, sessions=sessions,
                max_in_flight=max_in_flight, queue_limit=queue_limit,
                duration_ms=duration_ms, warmup_ms=warmup_ms,
                cooldown_ms=cooldown_ms, record_count=record_count,
                workload=workload, distribution=distribution, seed=seed)
    cells: List = []
    for binding_name in bindings:
        if include_closed_loop:
            cells.append((
                {"binding": binding_name, "mode": "closed", "policy": "-",
                 "rate": 0},
                dict(base, binding=binding_name, mode="closed", policy="-",
                     rate_ops_s=0)))
        for policy in policies:
            for rate in rates:
                cells.append((
                    {"binding": binding_name, "mode": "open",
                     "policy": policy, "rate": rate},
                    dict(base, binding=binding_name, mode="open",
                         policy=policy, rate_ops_s=rate)))
    return make_points("fig14", cells)


def run_fig14(bindings: Iterable[str] = DEFAULT_BINDINGS,
              policies: Iterable[str] = DEFAULT_POLICIES,
              rates: Sequence[float] = DEFAULT_RATES,
              arrivals: str = "poisson", sessions: int = 1_000,
              max_in_flight: int = 16, queue_limit: int = 64,
              duration_ms: float = 10_000.0, warmup_ms: float = 2_000.0,
              cooldown_ms: float = 1_000.0, record_count: int = 500,
              workload: str = "A", distribution: str = "latest",
              seed: int = 42, include_closed_loop: bool = True,
              jobs: JobsSpec = 1) -> List[Dict]:
    """Regenerate the Figure 14 latency/staleness-vs-offered-load series.

    Returns one record per (binding, mode, policy, offered rate); the
    sweep engine merges worker records in grid order, so ``jobs`` never
    changes the output.
    """
    points = build_fig14_points(
        bindings=bindings, policies=policies, rates=rates, arrivals=arrivals,
        sessions=sessions, max_in_flight=max_in_flight,
        queue_limit=queue_limit, duration_ms=duration_ms,
        warmup_ms=warmup_ms, cooldown_ms=cooldown_ms,
        record_count=record_count, workload=workload,
        distribution=distribution, seed=seed,
        include_closed_loop=include_closed_loop)
    return run_sweep(points, run_fig14_point, jobs=jobs).records()


def format_fig14(records: List[Dict]) -> str:
    """Render the figure as one table: closed overlay first per binding."""
    columns = ["binding", "mode", "policy", "offered_rate_ops_s",
               "offered_ops_s", "throughput_ops_s", "shed_pct",
               "queue_delay_mean_ms", "queue_delay_p99_ms",
               "preliminary_mean_ms", "final_mean_ms", "final_p99_ms",
               "staleness_pct", "measured_ops"]
    headers = ["binding", "mode", "policy", "rate (ops/s)",
               "offered (ops/s)", "goodput (ops/s)", "shed (%)",
               "qdelay mean (ms)", "qdelay p99 (ms)", "prelim mean (ms)",
               "final mean (ms)", "final p99 (ms)", "staleness (%)", "ops"]
    rows = []
    for record in records:
        row = [record[c] for c in columns]
        # The closed-loop overlay has no offered rate.
        if record["mode"] == "closed":
            row[3] = "-"
        rows.append(row)
    lines = [format_table(
        headers, rows,
        title=("Figure 14 — latency and staleness vs offered load "
               "(open-loop Poisson arrivals over client sessions, "
               "closed-loop overlay, admission-policy ablation)"))]
    sample = records[0] if records else {}
    if sample:
        lines.append(
            f"  sessions={sample['sessions']}, "
            f"max in-flight={sample['max_in_flight']} total; "
            f"'queue' waits in a bounded FIFO (delay accounted above), "
            f"'shed' drops arrivals beyond the in-flight bound")
    return "\n".join(lines)
