"""Measurement utilities shared by tests, examples, and benchmark harnesses."""

from repro.metrics.latency import LatencyRecorder
from repro.metrics.bandwidth import BandwidthProbe
from repro.metrics.divergence import DivergenceCounter
from repro.metrics.summary import format_table, format_row

__all__ = [
    "LatencyRecorder",
    "BandwidthProbe",
    "DivergenceCounter",
    "format_table",
    "format_row",
]
