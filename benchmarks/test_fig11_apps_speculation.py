"""Figure 11 — application-level speculation: ad serving and Twissandra."""

import pytest

from repro.bench.fig11_apps import format_fig11, run_fig11


@pytest.mark.benchmark(group="fig11")
def test_fig11_apps_speculation(benchmark, save_report):
    records = benchmark.pedantic(
        run_fig11,
        kwargs=dict(apps=("ads", "twissandra"), systems=("C2", "CC2"),
                    workloads=("A", "B", "C"), thread_counts=(1, 3),
                    duration_ms=6_000.0, warmup_ms=1_500.0,
                    cooldown_ms=1_000.0, profile_count=1_000, ref_count=2_000,
                    seed=42),
        rounds=1, iterations=1)
    save_report("fig11_apps_speculation", format_fig11(records))

    for app in ("ads", "twissandra"):
        for workload in ("A", "B", "C"):
            rows = {(r["system"], r["threads_per_client"]): r
                    for r in records
                    if r["app"] == app and r["workload"] == workload}
            for threads in (1, 3):
                baseline = rows[("C2", threads)]
                speculative = rows[("CC2", threads)]
                # Speculation on the preliminary reference list cuts the
                # read (two-step fetch) latency.
                assert speculative["read_latency_mean_ms"] < \
                    baseline["read_latency_mean_ms"]
                # Misspeculation stays rare.  The paper reports < 1 % with its
                # full-size corpora (22 k timelines / 100 k profiles); our
                # scaled-down datasets concentrate updates on fewer keys, so
                # the bound here is looser.
                assert speculative["misspeculation_pct"] < 10.0

    # Twissandra's replicas are farther away, so its absolute latencies are
    # higher than the ads system's for the same configuration.
    ads = [r for r in records if r["app"] == "ads" and r["system"] == "C2"]
    twissandra = [r for r in records
                  if r["app"] == "twissandra" and r["system"] == "C2"]
    assert (sum(r["read_latency_mean_ms"] for r in twissandra)
            / len(twissandra)) > \
        (sum(r["read_latency_mean_ms"] for r in ads) / len(ads))
