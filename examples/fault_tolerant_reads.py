"""Correctables under faults: reads keep flowing while replicas die.

Demonstrates the ``repro.faults`` subsystem end-to-end:

1. build a fault-tolerant Cassandra deployment (coordinator timeouts with
   retry/downgrade, client failover, read repair);
2. script a fault scenario — one replica crashes mid-run and recovers;
3. issue ICG reads throughout and watch every one of them complete, with the
   preliminary view arriving fast and the final view routed around the crash;
4. afterwards, a ZooKeeper ensemble loses its leader, elects a new one, and a
   queue client fails over without losing its dequeue.

Run with::

    PYTHONPATH=src python examples/fault_tolerant_reads.py
"""

from repro.cassandra_sim.cluster import CassandraCluster
from repro.cassandra_sim.config import CassandraConfig
from repro.faults import FaultInjector, cassandra_aliases, get_scenario, zookeeper_aliases
from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region
from repro.zookeeper_sim.cluster import ZooKeeperCluster
from repro.zookeeper_sim.config import ZooKeeperConfig


def cassandra_replica_crash() -> None:
    print("=== Cassandra: quorum reads across a replica crash ===")
    env = SimEnvironment(seed=7)
    cluster = CassandraCluster(env, CassandraConfig.fault_tolerant())
    cluster.preload({f"item:{i}": f"price-{i}" for i in range(50)})
    client = cluster.add_client("shop-frontend", Region.IRL, Region.FRK,
                                fallbacks=True)

    injector = FaultInjector(env, schedule=get_scenario(
        "replica-crash", at_ms=1_000.0, duration_ms=3_000.0),
        aliases=cassandra_aliases(cluster))
    injector.arm()

    completions = []

    def issue_read(index: int) -> None:
        key = f"item:{index % 50}"
        client.read(
            key, r=2, icg=True,
            on_final=lambda resp, t0=env.now(): completions.append(
                (env.now(), resp["value"], resp.get("degraded", False))))

    # One read every 200 ms for 6 simulated seconds, spanning the crash.
    for i in range(30):
        env.scheduler.schedule(i * 200.0, issue_read, i)
    env.run_until_idle()

    degraded = sum(1 for _, _, d in completions if d)
    coordinator = cluster.replica_in(Region.FRK)
    print(f"reads completed : {len(completions)}/30")
    print(f"degraded quorums: {degraded}")
    print(f"coord retries   : {coordinator.read_retries}")
    for time_ms, action, target in [(f.time_ms, f.action, f.target)
                                    for f in injector.log]:
        print(f"fault @ {time_ms:7.1f} ms: {action} {target}")
    print()


def zookeeper_leader_crash() -> None:
    print("=== ZooKeeper: queue survives a leader crash ===")
    env = SimEnvironment(seed=13)
    cluster = ZooKeeperCluster(env, leader_region=Region.IRL,
                               follower_regions=(Region.FRK, Region.VRG),
                               config=ZooKeeperConfig.fault_tolerant())
    cluster.preload_queue("/tickets", [f"ticket-{i}" for i in range(20)])
    cluster.enable_failure_detection()
    client = cluster.add_client("retailer", Region.FRK,
                                connect_region=Region.FRK, failover=True)

    injector = FaultInjector(env, schedule=get_scenario(
        "leader-crash", at_ms=1_000.0, duration_ms=5_000.0),
        aliases=zookeeper_aliases(cluster))
    injector.arm()

    sold = []

    def sell(index: int) -> None:
        client.dequeue("/tickets", icg=True,
                       on_final=lambda resp: sold.append(resp))

    for i in range(10):
        env.scheduler.schedule(i * 600.0, sell, i)
    env.run(until=30_000.0)

    ok = [r for r in sold if r["ok"] and r["result"]["item"]]
    new_leader = cluster.current_leader()
    print(f"dequeues completed: {len(ok)}/10")
    print(f"tickets sold      : {[r['result']['item'] for r in ok]}")
    print(f"old leader        : {cluster.leader.name} (crashed, rejoined)")
    print(f"current leader    : {new_leader.name} (epoch {new_leader.epoch})")
    print(f"client retries    : {client.retries}")


if __name__ == "__main__":
    cassandra_replica_crash()
    zookeeper_leader_crash()
