"""Figure 12 — ticket-purchase latency: Correctable ZooKeeper vs ZooKeeper."""

import pytest

from repro.bench.fig12_tickets import format_fig12, run_fig12


@pytest.mark.benchmark(group="fig12")
def test_fig12_ticket_selling(benchmark, save_report):
    results = benchmark.pedantic(
        run_fig12,
        kwargs=dict(stock=500, retailers=4, threshold=20, seed=42),
        rounds=1, iterations=1)
    save_report("fig12_ticket_selling", format_fig12(results))

    czk, zk = results["CZK"], results["ZK"]
    # Nothing is oversold and the whole stock sells in both systems.
    for result in results.values():
        assert result["oversold"] == 0
        assert result["tickets_sold"] == result["stock"]
    # CZK: cheap purchases from the preliminary view until the last
    # `threshold` tickets, then the full atomic latency.
    assert czk["early_mean_ms"] < 10
    assert czk["last_mean_ms"] > 25
    assert czk["preliminary_purchases"] >= czk["stock"] - czk["threshold"] - 10
    # ZK pays the commit latency for every ticket.
    assert zk["early_mean_ms"] > 25
    assert zk["preliminary_purchases"] == 0
    # CZK is at least ~5x faster on the non-contended part of the sale.
    assert zk["early_mean_ms"] / czk["early_mean_ms"] > 5
