"""Figure 5 — single-request read latencies in Cassandra for all quorum configurations."""

import pytest

from repro.bench.fig05_single_latency import format_fig05, latency_gap_ms, run_fig05


@pytest.mark.benchmark(group="fig05")
def test_fig05_single_request_latency(benchmark, save_report):
    results = benchmark.pedantic(
        run_fig05,
        kwargs=dict(samples=200, record_count=200, seed=42),
        rounds=1, iterations=1)
    save_report("fig05_cassandra_single_latency", format_fig05(results))

    # Preliminary views track C1; final views track the matching quorum size.
    assert results["CC2"]["preliminary"]["mean_ms"] == pytest.approx(
        results["C1"]["final"]["mean_ms"], rel=0.25)
    assert results["CC2"]["final"]["mean_ms"] == pytest.approx(
        results["C2"]["final"]["mean_ms"], rel=0.25)
    assert results["CC3"]["final"]["mean_ms"] == pytest.approx(
        results["C3"]["final"]["mean_ms"], rel=0.25)
    # The speculation window grows with the distance to the quorum member.
    assert latency_gap_ms(results, "CC2") > 10
    assert latency_gap_ms(results, "CC3") > 2 * latency_gap_ms(results, "CC2")
