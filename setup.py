"""Setuptools shim.

Kept so that ``python setup.py develop`` works in offline environments where
PEP 660 editable installs cannot build a wheel; configuration lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
