"""Tests for the unified ClusterSpec construction API."""

import pytest

from repro.bench.common import CassandraScenario, build_cassandra_scenario
from repro.cassandra_sim.config import CassandraConfig
from repro.core.cluster_spec import REMOTE_CONTACTS, BuiltCluster, ClusterSpec
from repro.sim.topology import Region


class TestSpecLayout:
    def test_default_spec_reproduces_paper_deployment(self):
        built = ClusterSpec().build()
        assert [r.name for r in built.cluster.replicas] == [
            "cassandra-0-" + Region.FRK,
            "cassandra-1-" + Region.IRL,
            "cassandra-2-" + Region.VRG,
        ]
        assert built.cluster.partitioner.replication_factor == 3
        assert built.cluster.partitioner.vnodes_per_node == 8

    def test_members_round_robin(self):
        spec = ClusterSpec(nodes=6)
        regions = [region for _, region in spec.members()]
        assert regions == [Region.FRK, Region.IRL, Region.VRG] * 2
        names = [name for name, _ in spec.members()]
        assert names[3] == "cassandra-3-" + Region.FRK

    def test_explicit_region_cycle(self):
        spec = ClusterSpec(nodes=4, regions=(Region.VRG, Region.NCA),
                           replication_factor=2)
        assert spec.node_regions() == (Region.VRG, Region.NCA,
                                       Region.VRG, Region.NCA)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=0)
        with pytest.raises(ValueError):
            ClusterSpec(nodes=2, replication_factor=3)
        with pytest.raises(ValueError):
            ClusterSpec(vnodes_per_node=0)
        with pytest.raises(ValueError):
            ClusterSpec(regions=())


class TestEffectiveConfig:
    def test_caller_config_identity_preserved_without_overrides(self):
        config = CassandraConfig()
        spec = ClusterSpec(config=config)
        assert spec.effective_config() is config

    def test_equal_override_keeps_identity(self):
        config = CassandraConfig(replication_factor=3)
        spec = ClusterSpec(config=config, replication_factor=3)
        assert spec.effective_config() is config

    def test_overrides_applied(self):
        spec = ClusterSpec(nodes=6, config=CassandraConfig(),
                           replication_factor=2, vnodes_per_node=4)
        config = spec.effective_config()
        assert config.replication_factor == 2
        assert config.vnodes_per_node == 4

    def test_vnodes_flow_to_partitioner(self):
        built = ClusterSpec(nodes=4, vnodes_per_node=3).build()
        partitioner = built.cluster.partitioner
        assert partitioner.vnodes_per_node == 3
        assert len(partitioner.token_layout()) == 4 * 3


class TestBuild:
    def test_clients_and_contacts(self):
        built = ClusterSpec(client_regions=(Region.IRL, Region.FRK)).build()
        assert set(built.clients) == {Region.IRL, Region.FRK}
        irl = built.client_in(Region.IRL)
        assert irl.name == "ycsb-client-" + Region.IRL
        # Remote contacts: the Irish client coordinates through Frankfurt.
        contact = built.cluster.replica_in(REMOTE_CONTACTS[Region.IRL])
        assert irl.contact == contact.name

    def test_preload_covers_owned_keys(self):
        built = ClusterSpec(nodes=6, record_count=50).build()
        cluster = built.cluster
        for key in built.dataset.keys():
            for name in cluster.partitioner.replicas_for(key):
                assert cluster.replica_by_name(name).table.contains(key)

    def test_preload_skips_non_owners(self):
        built = ClusterSpec(nodes=6, record_count=50).build()
        cluster = built.cluster
        total_rows = sum(len(r.table) for r in cluster.replicas)
        assert total_rows == 50 * 3  # exactly RF copies per key

    def test_preload_false(self):
        built = ClusterSpec(preload=False).build()
        assert all(len(r.table) == 0 for r in built.cluster.replicas)

    def test_determinism(self):
        a = ClusterSpec(nodes=5, seed=7, record_count=20)
        b = ClusterSpec(nodes=5, seed=7, record_count=20)
        assert (a.build().cluster.partitioner.token_layout()
                == b.build().cluster.partitioner.token_layout())


class TestLegacyShim:
    def test_scenario_alias_is_built_cluster(self):
        assert CassandraScenario is BuiltCluster

    def test_shim_matches_direct_spec(self):
        shim = build_cassandra_scenario(seed=3, record_count=30)
        spec = ClusterSpec(seed=3, record_count=30).build()
        assert ([r.name for r in shim.cluster.replicas]
                == [r.name for r in spec.cluster.replicas])
        assert (shim.cluster.partitioner.token_layout()
                == spec.cluster.partitioner.token_layout())
        assert list(shim.clients) == list(spec.clients)
        assert shim.dataset.keys() == spec.dataset.keys()

    def test_shim_client_fallbacks(self):
        shim = build_cassandra_scenario(client_fallbacks=True)
        client = shim.client_in(Region.IRL)
        assert len(client._contacts) == 3
