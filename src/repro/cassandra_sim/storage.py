"""Per-replica storage engine: a last-write-wins versioned table."""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.cassandra_sim.versions import VersionedValue


class LocalTable:
    """The key-value state one replica holds locally."""

    def __init__(self) -> None:
        self._rows: Dict[str, VersionedValue] = {}
        self.reads = 0
        self.writes_applied = 0
        self.writes_ignored = 0

    def read(self, key: str) -> Optional[VersionedValue]:
        """Return the locally stored version of ``key`` (None if absent)."""
        self.reads += 1
        return self._rows.get(key)

    def apply(self, key: str, version: VersionedValue) -> bool:
        """Apply a write if it is newer than the stored version (LWW).

        Returns True when the write was applied, False when it was stale and
        therefore ignored.
        """
        current = self._rows.get(key)
        if version.newer_than(current):
            self._rows[key] = version
            self.writes_applied += 1
            return True
        self.writes_ignored += 1
        return False

    def contains(self, key: str) -> bool:
        return key in self._rows

    def get(self, key: str) -> Optional[VersionedValue]:
        """Raw access without touching the ``reads`` counter.

        Used by range streaming and post-run verification, which inspect
        state without modelling a served read.
        """
        return self._rows.get(key)

    def keys(self) -> Tuple[str, ...]:
        """All stored keys, sorted — the deterministic streaming scan order."""
        return tuple(sorted(self._rows))

    def items(self) -> Iterator[Tuple[str, VersionedValue]]:
        """Iterate ``(key, version)`` pairs in sorted key order."""
        for key in sorted(self._rows):
            yield key, self._rows[key]

    def __len__(self) -> int:
        return len(self._rows)
