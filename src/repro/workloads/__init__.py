"""YCSB-style workload generation and closed-loop load running.

The paper drives its Cassandra experiments with YCSB workloads A (50:50
read/update), B (95:5) and C (read-only), under Zipfian and Latest request
distributions.  This package reimplements those workload semantics and a
closed-loop runner that measures latency, throughput, divergence and
bandwidth over a steady-state window.
"""

from repro.workloads.distributions import (
    UniformKeyChooser,
    ZipfianKeyChooser,
    LatestKeyChooser,
    ScrambledZipfianKeyChooser,
    make_key_chooser,
)
from repro.workloads.records import Dataset, make_value
from repro.workloads.ycsb import (
    WorkloadSpec,
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    workload_by_name,
    OperationGenerator,
)
from repro.workloads.runner import ClosedLoopRunner, RunResult

__all__ = [
    "UniformKeyChooser",
    "ZipfianKeyChooser",
    "LatestKeyChooser",
    "ScrambledZipfianKeyChooser",
    "make_key_chooser",
    "Dataset",
    "make_value",
    "WorkloadSpec",
    "WORKLOAD_A",
    "WORKLOAD_B",
    "WORKLOAD_C",
    "workload_by_name",
    "OperationGenerator",
    "ClosedLoopRunner",
    "RunResult",
]
