"""The znode data tree.

A simplified version of ZooKeeper's hierarchical namespace: znodes store a
data blob and children; ``create`` supports the *sequential* flag that
appends a zero-padded, monotonically increasing counter to the requested
name — the primitive the distributed-queue recipe is built on.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

#: Memoized ``path -> components`` (every server resolves the same queue and
#: parent paths over and over; splitting is on the commit hot path).
_SPLIT_CACHE: Dict[str, Tuple[str, ...]] = {}
_SPLIT_CACHE_LIMIT = 4096


class NoNodeError(KeyError):
    """Raised when an operation targets a znode that does not exist."""


class NodeExistsError(ValueError):
    """Raised when creating a znode that already exists (non-sequential)."""


class Znode:
    """One node in the tree."""

    __slots__ = ("name", "data", "children", "next_sequence", "version")

    def __init__(self, name: str, data: Any = None) -> None:
        self.name = name
        self.data = data
        self.children: Dict[str, "Znode"] = {}
        self.next_sequence = 0
        self.version = 0


class DataTree:
    """A hierarchical namespace of znodes rooted at ``/``."""

    def __init__(self) -> None:
        self._root = Znode("/")

    # -- path helpers ------------------------------------------------------
    @staticmethod
    def _split(path: str) -> Tuple[str, ...]:
        parts = _SPLIT_CACHE.get(path)
        if parts is None:
            if not path.startswith("/"):
                raise ValueError(f"paths must be absolute, got {path!r}")
            parts = tuple(part for part in path.split("/") if part)
            if len(_SPLIT_CACHE) >= _SPLIT_CACHE_LIMIT:
                # Sequential-queue workloads produce unbounded one-shot
                # paths; evict the most recent insertion (dicts pop LIFO)
                # so the long-lived hot entries (queue/parent paths, cached
                # early) survive instead of being wholesale cleared.
                _SPLIT_CACHE.popitem()
            _SPLIT_CACHE[path] = parts
        return parts

    def _lookup(self, path: str) -> Znode:
        node = self._root
        for part in self._split(path):
            child = node.children.get(part)
            if child is None:
                raise NoNodeError(path)
            node = child
        return node

    def exists(self, path: str) -> bool:
        try:
            self._lookup(path)
            return True
        except NoNodeError:
            return False

    # -- operations ----------------------------------------------------------
    def create(self, path: str, data: Any = None,
               sequential: bool = False) -> str:
        """Create a znode; returns the actual path (with sequence suffix)."""
        parts = self._split(path)
        if not parts:
            raise ValueError("cannot create the root znode")
        parent_path = "/" + "/".join(parts[:-1])
        # Walk to the parent directly instead of re-splitting parent_path.
        parent = self._root
        for part in parts[:-1]:
            child = parent.children.get(part)
            if child is None:
                raise NoNodeError(parent_path)
            parent = child
        name = parts[-1]
        if sequential:
            name = f"{name}{parent.next_sequence:010d}"
            parent.next_sequence += 1
        if name in parent.children:
            raise NodeExistsError(f"{parent_path.rstrip('/')}/{name}")
        parent.children[name] = Znode(name, data)
        parent.version += 1
        created = (parent_path.rstrip("/") or "") + "/" + name
        return created

    def delete(self, path: str) -> None:
        """Delete a leaf znode (children must be removed first)."""
        parts = self._split(path)
        if not parts:
            raise ValueError("cannot delete the root znode")
        parent = self._lookup("/" + "/".join(parts[:-1])) if parts[:-1] else self._root
        name = parts[-1]
        if name not in parent.children:
            raise NoNodeError(path)
        if parent.children[name].children:
            raise ValueError(f"znode {path!r} has children")
        del parent.children[name]
        parent.version += 1

    def get(self, path: str) -> Any:
        """Return the data stored at ``path``."""
        return self._lookup(path).data

    def set(self, path: str, data: Any) -> None:
        node = self._lookup(path)
        node.data = data
        node.version += 1

    def get_children(self, path: str) -> List[str]:
        """Sorted child names of ``path`` (sorted order drives queue FIFO)."""
        return sorted(self._lookup(path).children.keys())

    def child_count(self, path: str) -> int:
        return len(self._lookup(path).children)

    # -- state transfer ------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict copy of the whole tree, for full state transfer."""

        def _dump(node: Znode) -> Dict[str, Any]:
            return {"data": node.data,
                    "next_sequence": node.next_sequence,
                    "version": node.version,
                    "children": {name: _dump(child)
                                 for name, child in node.children.items()}}

        return _dump(self._root)

    def restore(self, snapshot: Dict[str, Any]) -> None:
        """Replace the entire tree with a :meth:`snapshot` copy."""

        def _load(name: str, payload: Dict[str, Any]) -> Znode:
            node = Znode(name, payload["data"])
            node.next_sequence = payload["next_sequence"]
            node.version = payload["version"]
            node.children = {child_name: _load(child_name, child)
                             for child_name, child in payload["children"].items()}
            return node

        self._root = _load("/", snapshot)
