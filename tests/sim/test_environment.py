"""Tests for the SimEnvironment convenience bundle."""

import pytest

from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region, Topology


class TestEnvironment:
    def test_default_topology_is_ec2(self):
        env = SimEnvironment(seed=1)
        assert env.topology.rtt(Region.IRL, Region.FRK) == pytest.approx(20.0)

    def test_custom_topology_used(self):
        topo = Topology(jitter_fraction=0.0)
        topo.set_rtt(Region.IRL, Region.FRK, 5.0)
        env = SimEnvironment(seed=1, topology=topo)
        assert env.topology.rtt(Region.IRL, Region.FRK) == 5.0

    def test_rng_streams_are_deterministic_and_independent(self):
        env_a, env_b = SimEnvironment(seed=4), SimEnvironment(seed=4)
        assert env_a.rng("x").random() == env_b.rng("x").random()
        assert env_a.rng("x").random() != SimEnvironment(seed=5).rng("x").random()

    def test_now_tracks_scheduler(self):
        env = SimEnvironment(seed=1)
        env.scheduler.schedule(12.5, lambda: None)
        env.run_until_idle()
        assert env.now() == pytest.approx(12.5)

    def test_run_until(self):
        env = SimEnvironment(seed=1)
        fired = []
        env.scheduler.schedule(10, fired.append, 1)
        env.scheduler.schedule(100, fired.append, 2)
        env.run(until=50)
        assert fired == [1]
        assert env.now() == 50
