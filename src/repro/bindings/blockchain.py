"""Binding exposing blockchain confirmations as incremental consistency levels.

Section 4.5 of the paper: "Correctables can track transaction confirmations
as they accumulate and eventually the transaction becomes an irrevocable part
of the blockchain, i.e., strongly-consistent with high probability".

The binding advertises four levels, one per confirmation milestone:

* ``PENDING``      — the transaction was accepted into the mempool;
* ``CONFIRMED_1``  — it is included in the newest block (revocable);
* ``CONFIRMED_3``  — three blocks deep;
* ``CONFIRMED_6``  — six blocks deep: final with high probability (this is
  the level that closes an ``invoke``).

Each view's value reports the transaction id, its current confirmation count
and the chain height, so a wallet can show progress to the user (the
interactivity/throughput trade-off discussed in §4.5).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.bindings.base import Binding, CallbackType
from repro.blockchain_sim.chain import Transaction
from repro.blockchain_sim.network import BlockchainNetwork
from repro.core.consistency import ConsistencyLevel
from repro.core.operations import Operation, custom

#: Confirmation milestones exposed as consistency levels.
PENDING = ConsistencyLevel.register("pending", 5)
CONFIRMED_1 = ConsistencyLevel.register("confirmed_1", 12)
CONFIRMED_3 = ConsistencyLevel.register("confirmed_3", 22)
CONFIRMED_6 = ConsistencyLevel.register("confirmed_6", 29)

#: Level -> number of confirmations required before it is delivered.
CONFIRMATION_THRESHOLDS = {
    PENDING: 0,
    CONFIRMED_1: 1,
    CONFIRMED_3: 3,
    CONFIRMED_6: 6,
}


def transfer(sender: str, recipient: str, amount: float) -> Operation:
    """An application-level transfer operation understood by this binding."""
    return custom("transfer", recipient, sender, recipient, amount,
                  is_read=False)


class BlockchainBinding(Binding):
    """Correctables binding over a :class:`BlockchainNetwork`."""

    def __init__(self, network: BlockchainNetwork) -> None:
        self.network = network
        self.clock = network.scheduler.now
        self.transactions_submitted = 0

    def consistency_levels(self) -> List[ConsistencyLevel]:
        return [PENDING, CONFIRMED_1, CONFIRMED_3, CONFIRMED_6]

    def submit_operation(self, operation: Operation,
                         levels: List[ConsistencyLevel],
                         callback: CallbackType) -> None:
        levels = self.validate_levels(levels)
        if operation.name != "transfer":
            self.reject_unsupported(operation, levels, callback)
            return
        sender, recipient, amount = operation.args
        transaction = Transaction(sender=sender, recipient=recipient,
                                  amount=float(amount))
        self.transactions_submitted += 1
        self.network.submit_transaction(transaction)

        pending_levels = levels
        delivered: Dict[str, bool] = {level.name: False
                                      for level in pending_levels}

        def _view(confirmations: int, height: Optional[int]) -> Dict[str, Any]:
            return {"tx_id": transaction.tx_id,
                    "confirmations": confirmations,
                    "chain_height": height,
                    "sender": sender, "recipient": recipient,
                    "amount": float(amount)}

        def _deliver_reached(confirmations: int,
                             height: Optional[int]) -> None:
            for level in pending_levels:
                if delivered[level.name]:
                    continue
                if confirmations >= CONFIRMATION_THRESHOLDS[level]:
                    delivered[level.name] = True
                    callback(level, _view(confirmations, height))

        # The PENDING view (mempool acceptance) is available immediately.
        _deliver_reached(0, self.network.chain.height)
        if all(delivered.values()):
            return
        self.network.watch_transaction(transaction.tx_id, _deliver_reached)
