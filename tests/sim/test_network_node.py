"""Tests for the network, message accounting, nodes, and processing queues."""

import pytest

from repro.sim.environment import SimEnvironment
from repro.sim.network import MESSAGE_HEADER_BYTES, Message, estimate_payload_size
from repro.sim.node import Node, ProcessingQueue
from repro.sim.scheduler import Scheduler
from repro.sim.topology import Region, Topology


class Recorder(Node):
    """A node that records every message it receives."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def handle_message(self, message):
        self.received.append(message)


class Echo(Node):
    """A node with a dispatching handler (``on_ping``)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.pings = 0

    def on_ping(self, message):
        self.pings += 1
        self.send(message.src, "pong", {"n": self.pings})


def _make_env():
    return SimEnvironment(seed=5, topology=Topology(jitter_fraction=0.0))


class TestDelivery:
    def test_message_delivered_after_one_way_latency(self):
        env = _make_env()
        a = Recorder("a", Region.IRL, env.network)
        b = Recorder("b", Region.FRK, env.network)
        a.send("b", "hello", {"x": 1})
        env.run_until_idle()
        assert len(b.received) == 1
        assert env.now() == pytest.approx(10.0)

    def test_same_region_latency_is_small(self):
        env = _make_env()
        Recorder("a", Region.IRL, env.network)
        b = Recorder("b", Region.IRL, env.network)
        env.network.send("a", "b", "hi")
        env.run_until_idle()
        assert env.now() == pytest.approx(1.0)
        assert len(b.received) == 1

    def test_same_host_latency_is_loopback(self):
        env = _make_env()
        Recorder("a", Region.IRL, env.network, host="h1")
        Recorder("b", Region.IRL, env.network, host="h1")
        env.network.send("a", "b", "hi")
        env.run_until_idle()
        assert env.now() == pytest.approx(0.15)

    def test_unknown_destination_raises(self):
        env = _make_env()
        Recorder("a", Region.IRL, env.network)
        with pytest.raises(KeyError):
            env.network.send("a", "ghost", "hi")

    def test_duplicate_node_name_rejected(self):
        env = _make_env()
        Recorder("a", Region.IRL, env.network)
        with pytest.raises(ValueError):
            Recorder("a", Region.FRK, env.network)

    def test_dispatch_by_kind(self):
        env = _make_env()
        client = Recorder("client", Region.IRL, env.network)
        echo = Echo("echo", Region.FRK, env.network)
        client.send("echo", "ping")
        env.run_until_idle()
        assert echo.pings == 1
        assert client.received[0].kind == "pong"

    def test_missing_handler_raises(self):
        env = _make_env()
        Echo("echo", Region.FRK, env.network)
        Recorder("client", Region.IRL, env.network)
        env.network.send("client", "echo", "unknown_kind")
        with pytest.raises(NotImplementedError):
            env.run_until_idle()


class TestFaults:
    def test_crashed_node_drops_messages(self):
        env = _make_env()
        Recorder("a", Region.IRL, env.network)
        b = Recorder("b", Region.FRK, env.network)
        b.crash()
        env.network.send("a", "b", "hi")
        env.run_until_idle()
        assert b.received == []
        assert env.network.messages_dropped == 1

    def test_recovered_node_receives_again(self):
        env = _make_env()
        Recorder("a", Region.IRL, env.network)
        b = Recorder("b", Region.FRK, env.network)
        b.crash()
        b.recover()
        env.network.send("a", "b", "hi")
        env.run_until_idle()
        assert len(b.received) == 1

    def test_partition_drops_both_directions(self):
        env = _make_env()
        a = Recorder("a", Region.IRL, env.network)
        b = Recorder("b", Region.FRK, env.network)
        env.network.partition("a", "b")
        env.network.send("a", "b", "x")
        env.network.send("b", "a", "y")
        env.run_until_idle()
        assert a.received == [] and b.received == []

    def test_heal_restores_delivery(self):
        env = _make_env()
        Recorder("a", Region.IRL, env.network)
        b = Recorder("b", Region.FRK, env.network)
        env.network.partition("a", "b")
        env.network.heal("a", "b")
        env.network.send("a", "b", "x")
        env.run_until_idle()
        assert len(b.received) == 1

    def test_crash_mid_flight_drops_message(self):
        env = _make_env()
        Recorder("a", Region.IRL, env.network)
        b = Recorder("b", Region.FRK, env.network)
        env.network.send("a", "b", "x")
        b.crash()
        env.run_until_idle()
        assert b.received == []


class TestAccounting:
    def test_bytes_counted_per_link(self):
        env = _make_env()
        Recorder("a", Region.IRL, env.network)
        Recorder("b", Region.FRK, env.network)
        env.network.send("a", "b", "x", size_bytes=100)
        env.network.send("b", "a", "y", size_bytes=50)
        assert env.network.link_stats("a", "b").bytes == 100
        assert env.network.bytes_between("a", "b") == 150
        assert env.network.bytes_touching("a") == 150
        assert env.network.total_bytes() == 150

    def test_default_size_includes_header(self):
        message = Message(src="a", dst="b", kind="k", payload={"key": "abc"})
        assert message.size_bytes >= MESSAGE_HEADER_BYTES

    def test_estimate_payload_size(self):
        assert estimate_payload_size(None) == 0
        assert estimate_payload_size("abcd") == 4
        assert estimate_payload_size(b"12345") == 5
        assert estimate_payload_size(7) == 8
        assert estimate_payload_size(["ab", "cd"]) == 4
        assert estimate_payload_size({"k": "vv"}) == 3

    def test_reset_stats(self):
        env = _make_env()
        Recorder("a", Region.IRL, env.network)
        Recorder("b", Region.FRK, env.network)
        env.network.send("a", "b", "x", size_bytes=10)
        env.network.reset_stats()
        assert env.network.total_bytes() == 0
        assert env.network.messages_sent == 0

    def test_partitioned_messages_still_charged(self):
        env = _make_env()
        Recorder("a", Region.IRL, env.network)
        Recorder("b", Region.FRK, env.network)
        env.network.partition("a", "b")
        env.network.send("a", "b", "x", size_bytes=77)
        assert env.network.bytes_between("a", "b") == 77

    def test_unused_link_stats_are_zero(self):
        env = _make_env()
        Recorder("a", Region.IRL, env.network)
        stats = env.network.link_stats("a", "ghost")
        assert stats.messages == 0 and stats.bytes == 0

    def test_unused_link_stats_are_immutable(self):
        # Every unused link shares one zero instance; mutating it (a bug in
        # the caller) must fail loudly instead of corrupting other callers.
        env = _make_env()
        Recorder("a", Region.IRL, env.network)
        stats = env.network.link_stats("a", "ghost")
        with pytest.raises(AttributeError):
            stats.record(100)
        with pytest.raises(AttributeError):
            stats.bytes = 5
        assert env.network.link_stats("x", "y").bytes == 0

    def test_used_link_stats_stay_mutable_records(self):
        env = _make_env()
        Recorder("a", Region.IRL, env.network)
        Recorder("b", Region.FRK, env.network)
        env.network.send("a", "b", "x", size_bytes=10)
        env.network.send("a", "b", "x", size_bytes=15)
        stats = env.network.link_stats("a", "b")
        assert stats.messages == 2 and stats.bytes == 25

    def test_bytes_touching_matches_link_scan(self):
        env = _make_env()
        Recorder("a", Region.IRL, env.network)
        Recorder("b", Region.FRK, env.network)
        Recorder("c", Region.VRG, env.network)
        env.network.send("a", "b", "x", size_bytes=10)
        env.network.send("b", "a", "x", size_bytes=20)
        env.network.send("c", "a", "x", size_bytes=40)
        env.network.send("b", "c", "x", size_bytes=80)
        scan = {name: sum(s.bytes for (src, dst), s in env.network._links.items()
                          if src == name or dst == name)
                for name in ("a", "b", "c")}
        assert {n: env.network.bytes_touching(n) for n in scan} == scan

    def test_bytes_touching_resets(self):
        env = _make_env()
        Recorder("a", Region.IRL, env.network)
        Recorder("b", Region.FRK, env.network)
        env.network.send("a", "b", "x", size_bytes=10)
        env.network.reset_stats()
        assert env.network.bytes_touching("a") == 0


class TestProcessingQueue:
    def test_idle_queue_serves_immediately(self):
        scheduler = Scheduler()
        queue = ProcessingQueue(scheduler)
        done = []
        queue.submit(2.0, done.append, "a")
        scheduler.run_until_idle()
        assert done == ["a"]
        assert scheduler.now() == pytest.approx(2.0)

    def test_fifo_backlog_accumulates_delay(self):
        scheduler = Scheduler()
        queue = ProcessingQueue(scheduler)
        finish_times = []
        for _ in range(3):
            queue.submit(5.0, lambda: finish_times.append(scheduler.now()))
        scheduler.run_until_idle()
        assert finish_times == [5.0, 10.0, 15.0]

    def test_queue_delay_reflects_backlog(self):
        scheduler = Scheduler()
        queue = ProcessingQueue(scheduler)
        queue.submit(5.0, lambda: None)
        queue.submit(5.0, lambda: None)
        assert queue.queue_delay() == pytest.approx(10.0)

    def test_negative_service_time_rejected(self):
        queue = ProcessingQueue(Scheduler())
        with pytest.raises(ValueError):
            queue.submit(-1.0, lambda: None)

    def test_utilization(self):
        scheduler = Scheduler()
        queue = ProcessingQueue(scheduler)
        queue.submit(5.0, lambda: None)
        scheduler.run_until_idle()
        scheduler.schedule(5.0, lambda: None)
        scheduler.run_until_idle()
        assert queue.utilization(10.0) == pytest.approx(0.5)
        assert queue.jobs_processed == 1

    def test_node_process_uses_own_service_time(self):
        env = _make_env()
        node = Recorder("n", Region.IRL, env.network, service_time_ms=3.0)
        done = []
        node.process(lambda: done.append(env.now()))
        node.process(lambda: done.append(env.now()), service_time_ms=1.0)
        env.run_until_idle()
        assert done == [3.0, 4.0]
