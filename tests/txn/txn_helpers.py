"""Shared helpers for the transaction-layer tests."""

from __future__ import annotations

from repro.core.cluster_spec import ClusterSpec
from repro.txn import TxnConfig, build_txn_fabric


def no_failover_config(**overrides):
    """Heartbeats off, so ``run_until_idle`` terminates.

    With ``heartbeat_interval_ms=0`` there is no failure detection (and no
    takeover); protocol-level tests that only need the happy paths use this
    so the event queue drains.  Failover tests keep heartbeats on and drive
    the clock with ``env.run(until=...)`` instead.
    """
    overrides.setdefault("heartbeat_interval_ms", 0.0)
    return TxnConfig(**overrides)


def make_fabric(nodes=3, seed=11, record_count=40, config=None,
                coordinator_count=2):
    """A small cluster with the transaction layer wired on top."""
    built = ClusterSpec(nodes=nodes, seed=seed, record_count=record_count,
                        client_regions=()).build()
    return build_txn_fabric(built, config=config or no_failover_config(),
                            coordinator_count=coordinator_count)


def collect(correctable):
    """Record a Correctable's preliminary views, final view, and error."""
    box = {"views": [], "final": None, "error": None}
    correctable.set_callbacks(
        on_update=box["views"].append,
        on_final=lambda view: box.__setitem__("final", view),
        on_error=lambda exc: box.__setitem__("error", exc))
    return box


def run_until(env, condition, step_ms=1.0, limit_ms=60_000.0):
    """Advance simulated time in small steps until ``condition()`` holds."""
    deadline = env.now() + limit_ms
    while not condition():
        if env.now() >= deadline:
            raise AssertionError("condition not reached within "
                                 f"{limit_ms:.0f}ms of simulated time")
        env.run(until=env.now() + step_ms)
