"""Figure 15 (beyond the paper): reads under live ring rebalancing.

The paper's experiments run against a fixed replica set.  This harness
measures what ICG reads look like while the replica set *changes*: a node
joins (bootstrap → stream → announce → serve) or decommissions (stream out →
retire) in the middle of an open-loop run, and every completed operation is
classified against the rebalance window into a *before* / *during* / *after*
phase.  The grid crosses cluster size × key skew × rebalance event:

* **cluster size** — more nodes means more, smaller key ranges move, so the
  disruption is shorter per range but touches more sources;
* **key skew** — YCSB Zipfian with a dialled ``theta`` (``uniform``,
  ``zipf-0.99``, ``zipf-1.2``); hot-partition regimes concentrate traffic on
  few keys, so a range move either misses the hot set entirely or hits all
  of it;
* **event** — ``join`` adds ``cassandra-{N}-{region}`` to the ring,
  ``decommission`` retires the last node.

Every point also verifies the safety property the protocol promises: after
the run drains, **no acknowledged write may be lost** — for every write the
client saw acked, the post-rebalance owner set must hold a version at least
that new (``lost_acked_writes`` must be 0; forwarded writes plus range
streaming are what make it hold).

Shapes to expect: *before* and *after* rows match a static ring; *during*
rows show a modest final-latency tail (stream batches compete with
foreground traffic on the source replicas, and a handful of operations pay
a stale-epoch retry or a client failover) and, under skew, a staleness
bump while the hot keys' new owners are still catching up.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.bench.common import cassandra_config_for
from repro.bench.sweep import JobsSpec, SweepPoint, make_points, run_sweep
from repro.cassandra_sim.client import CassandraClient
from repro.cassandra_sim.versions import resolve
from repro.core.cluster_spec import ClusterSpec
from repro.metrics.summary import format_table
from repro.sim.rand import derive_rng
from repro.sim.topology import Region, round_robin_regions
from repro.workloads.arrivals import make_arrival_process
from repro.workloads.runner import OpenLoopRunner
from repro.workloads.ycsb import OperationGenerator, workload_by_name

DEFAULT_NODES = (6, 12)
#: Key-skew regimes: YCSB uniform, the YCSB Zipfian constant, and a
#: hot-partition regime concentrating most traffic on a handful of keys.
DEFAULT_SKEWS = ("uniform", "zipf-0.99", "zipf-1.2")
DEFAULT_EVENTS = ("join", "decommission")
PHASES = ("before", "during", "after")

#: Client regions driving the run (distinct coordinators, as in fig14).
CLIENT_REGIONS = (Region.IRL, Region.FRK)


def skew_workload(skew: str, workload: str = "A"):
    """Map a skew label to a :class:`WorkloadSpec` (``zipf-{theta}`` dials
    the Zipfian exponent; ``uniform`` ignores it)."""
    base = workload_by_name(workload)
    if skew == "uniform":
        return base.with_distribution("uniform")
    if skew.startswith("zipf-"):
        return base.with_distribution("zipfian").with_skew(
            float(skew[len("zipf-"):]))
    raise ValueError(f"unknown skew label {skew!r}; "
                     f"use 'uniform' or 'zipf-<theta>'")


def make_rebalance_issue(clients: Sequence[CassandraClient],
                         clock: Callable[[], float],
                         samples: List[Dict[str, Any]],
                         acked: Dict[str, Any]) -> Callable:
    """A kv ``issue`` function over several clients that journals completions.

    Operations rotate over ``clients`` by the runner's session id (user ``k``
    issues through client ``k % len(clients)``).  Reads take the CC2 ICG
    path (preliminary at R=1, final at R=2); updates write at W=1.  Every
    completion is appended to ``samples`` with its completion instant, so
    the caller can classify it against the rebalance window after the run;
    every acked update records its write timestamp in ``acked``, the input
    to the zero-lost-acknowledged-writes check.
    """
    rotation = {"next": 0}

    def _issue(op_type: str, key: str, value: Optional[str],
               done: Callable[[Dict[str, Any]], None],
               session_id: Optional[int] = None) -> None:
        if session_id is None:
            session_id = rotation["next"]
            rotation["next"] += 1
        client = clients[session_id % len(clients)]

        def _finish(info: Dict[str, Any]) -> None:
            samples.append({"t": clock(), "op": op_type, **info})
            done(info)

        if op_type == "update":
            def _on_ack(resp: Dict[str, Any]) -> None:
                failed = "error" in resp
                timestamp = resp.get("timestamp")
                if not failed and timestamp is not None:
                    previous = acked.get(key)
                    if previous is None or timestamp > previous:
                        acked[key] = timestamp
                _finish({"final_latency_ms": resp["latency_ms"],
                         "failed": failed})

            client.write(key, value, w=1, on_final=_on_ack)
            return

        state: Dict[str, Any] = {"value": None, "latency": None, "had": False}

        def _on_preliminary(resp: Dict[str, Any]) -> None:
            state["had"] = True
            state["value"] = resp["value"]
            state["latency"] = resp["latency_ms"]

        def _on_final(resp: Dict[str, Any]) -> None:
            failed = "error" in resp
            _finish({
                "final_latency_ms": resp["latency_ms"],
                "preliminary_latency_ms": state["latency"],
                "had_preliminary": state["had"],
                "diverged": (not failed and state["had"]
                             and not resp.get("is_confirmation", False)
                             and state["value"] != resp["value"]),
                "failed": failed,
            })

        client.read(key, r=2, icg=True,
                    on_preliminary=_on_preliminary, on_final=_on_final)

    return _issue


def count_lost_acked_writes(cluster, acked: Dict[str, Any]) -> int:
    """Acked writes the post-rebalance owner set no longer holds.

    For every key the client saw an ack for, resolve the newest version
    across the key's *current* replicas; the write is lost if every owner's
    version is older than the acked timestamp.  Zero is the acceptance
    criterion: bootstrap forwarding plus range streaming must hand every
    acknowledged write to the new owners.
    """
    lost = 0
    for key, timestamp in acked.items():
        versions = [cluster.replica_by_name(name).table.get(key)
                    for name in cluster.partitioner.replicas_for(key)]
        newest = resolve(versions)
        if newest is None or newest.timestamp < timestamp:
            lost += 1
    return lost


def _p99(values: List[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = max(0, int(len(ordered) * 0.99 + 0.999999) - 1)
    return ordered[min(index, len(ordered) - 1)]


def _phase_stats(samples: List[Dict[str, Any]],
                 start: float, end: float) -> Dict[str, Dict[str, float]]:
    """Classify completions against the rebalance window and summarize."""
    buckets: Dict[str, List[Dict[str, Any]]] = {p: [] for p in PHASES}
    for sample in samples:
        if sample["t"] < start:
            phase = "before"
        elif sample["t"] <= end:
            phase = "during"
        else:
            phase = "after"
        buckets[phase].append(sample)
    stats: Dict[str, Dict[str, float]] = {}
    for phase, rows in buckets.items():
        finals = [r["final_latency_ms"] for r in rows if not r.get("failed")]
        prelims = [r["preliminary_latency_ms"] for r in rows
                   if r.get("preliminary_latency_ms") is not None]
        with_prelim = sum(1 for r in rows if r.get("had_preliminary"))
        diverged = sum(1 for r in rows if r.get("diverged"))
        stats[phase] = {
            "ops": len(rows),
            "final_mean_ms": sum(finals) / len(finals) if finals else 0.0,
            "final_p99_ms": _p99(finals),
            "prelim_mean_ms": sum(prelims) / len(prelims) if prelims else 0.0,
            "staleness_pct": (100.0 * diverged / with_prelim
                              if with_prelim else 0.0),
            "failed": sum(1 for r in rows if r.get("failed")),
        }
    return stats


# ---------------------------------------------------------------------------
# one grid cell
# ---------------------------------------------------------------------------

def run_fig15_point(point: SweepPoint) -> Dict:
    """Run one (nodes, skew, event) cell of the Figure 15 grid."""
    kwargs = point.kwargs
    nodes = kwargs["nodes"]
    skew = kwargs["skew"]
    event = kwargs["event"]
    seed = kwargs["seed"]
    label = f"fig15-{nodes}-{skew}-{event}"

    # Smaller stream batches than the config default: more, shorter transfer
    # rounds widen the window in which streaming and foreground traffic
    # genuinely interleave (the regime the figure measures).
    config = replace(cassandra_config_for("CC2"),
                     stream_batch_items=kwargs["stream_batch_items"])
    built = ClusterSpec(nodes=nodes, config=config, seed=seed,
                        record_count=kwargs["record_count"],
                        vnodes_per_node=kwargs["vnodes"],
                        client_regions=CLIENT_REGIONS,
                        preload=kwargs.get("preload", True),
                        client_fallbacks=True).build()
    cluster = built.cluster

    samples: List[Dict[str, Any]] = []
    acked: Dict[str, Any] = {}
    issue = make_rebalance_issue(
        [built.client_in(region) for region in CLIENT_REGIONS],
        built.env.scheduler.now, samples, acked)

    workload = skew_workload(skew, kwargs["workload"])
    runner = OpenLoopRunner(
        scheduler=built.env.scheduler, issue=issue,
        make_generator=lambda session_id: OperationGenerator.seeded(
            workload, built.dataset, seed, f"{label}-s{session_id}"),
        arrivals=make_arrival_process(
            "poisson", kwargs["rate_ops_s"],
            derive_rng(seed, f"{label}:arrivals")),
        sessions=kwargs["sessions"], duration_ms=kwargs["duration_ms"],
        warmup_ms=kwargs["warmup_ms"], cooldown_ms=kwargs["cooldown_ms"],
        label=label, max_in_flight=kwargs["max_in_flight"],
        policy="queue", queue_limit=kwargs["queue_limit"])

    regions = round_robin_regions(nodes)
    if event == "join":
        joiner_region = round_robin_regions(nodes + 1)[-1]
        operation = cluster.join_node(f"cassandra-{nodes}-{joiner_region}",
                                      joiner_region,
                                      at_ms=kwargs["event_at_ms"])
    elif event == "decommission":
        # The last node is never a client contact (contacts are the first
        # replicas of the FRK and VRG regions), so the event exercises the
        # data path rather than client failover alone.
        operation = cluster.decommission_node(
            f"cassandra-{nodes - 1}-{regions[-1]}",
            at_ms=kwargs["event_at_ms"])
    else:
        raise ValueError(f"unknown rebalance event {event!r}")

    result = runner.run()
    # Drain replication, forwarding, and any straggling stream traffic so
    # the loss check inspects the settled post-rebalance state.
    built.env.run_until_idle()
    if not operation.done:
        raise RuntimeError(f"{label}: rebalance did not complete "
                           f"(started_at={operation.started_at})")

    phases = _phase_stats(samples, operation.started_at,
                          operation.completed_at)
    from repro.cassandra_sim.storage import ColumnarTable

    record: Dict[str, Any] = {
        "nodes": nodes,
        "skew": skew,
        "event": event,
        "columnar": all(isinstance(replica.table, ColumnarTable)
                        for replica in cluster.replicas),
        "rebalance_ms": operation.duration_ms(),
        "ranges_moved": operation.change.total_ranges(),
        "keys_streamed": cluster.total_keys_streamed(),
        "stale_retries": cluster.total_stale_epoch_retries(),
        "writes_forwarded": cluster.total_writes_forwarded(),
        "client_retries": sum(c.retries for c in cluster.clients),
        "acked_writes": len(acked),
        "lost_acked_writes": count_lost_acked_writes(cluster, acked),
        "failed_ops": result.failed_ops,
        "measured_ops": result.measured_ops,
        "ring_version": cluster.partitioner.version,
    }
    for phase in PHASES:
        for metric, value in phases[phase].items():
            record[f"{phase}_{metric}"] = value
    return record


# ---------------------------------------------------------------------------
# the grid
# ---------------------------------------------------------------------------

def build_fig15_points(nodes: Sequence[int] = DEFAULT_NODES,
                       skews: Iterable[str] = DEFAULT_SKEWS,
                       events: Iterable[str] = DEFAULT_EVENTS,
                       rate_ops_s: float = 300.0,
                       sessions: int = 200,
                       max_in_flight: int = 64,
                       queue_limit: int = 256,
                       duration_ms: float = 8_000.0,
                       warmup_ms: float = 1_000.0,
                       cooldown_ms: float = 500.0,
                       event_at_ms: float = 3_000.0,
                       record_count: int = 600,
                       stream_batch_items: int = 16,
                       vnodes: Optional[int] = None,
                       workload: str = "A",
                       preload: bool = True,
                       seed: int = 42) -> List[SweepPoint]:
    """The (cluster size × key skew × rebalance event) grid.

    ``preload=False`` skips writing the initial dataset onto the ring —
    the million-key scale cell uses it so the grid cost is the (vectorized)
    key stream, not an O(record_count) preload loop; reads of untouched
    keys simply return not-found, which the harness does not count as a
    failure.
    """
    base = dict(rate_ops_s=rate_ops_s, sessions=sessions,
                max_in_flight=max_in_flight, queue_limit=queue_limit,
                duration_ms=duration_ms, warmup_ms=warmup_ms,
                cooldown_ms=cooldown_ms, event_at_ms=event_at_ms,
                record_count=record_count,
                stream_batch_items=stream_batch_items,
                vnodes=vnodes, workload=workload, preload=preload,
                seed=seed)
    cells: List = []
    for node_count in nodes:
        for skew in skews:
            for event in events:
                cells.append((
                    {"nodes": node_count, "skew": skew, "event": event},
                    dict(base, nodes=node_count, skew=skew, event=event)))
    return make_points("fig15", cells)


def run_fig15(nodes: Sequence[int] = DEFAULT_NODES,
              skews: Iterable[str] = DEFAULT_SKEWS,
              events: Iterable[str] = DEFAULT_EVENTS,
              rate_ops_s: float = 300.0, sessions: int = 200,
              max_in_flight: int = 64, queue_limit: int = 256,
              duration_ms: float = 8_000.0, warmup_ms: float = 1_000.0,
              cooldown_ms: float = 500.0, event_at_ms: float = 3_000.0,
              record_count: int = 600, stream_batch_items: int = 16,
              vnodes: Optional[int] = None, workload: str = "A",
              preload: bool = True,
              seed: int = 42, jobs: JobsSpec = 1) -> List[Dict]:
    """Regenerate the Figure 15 rebalance series.

    Returns one record per (nodes, skew, event); the sweep engine merges
    worker records in grid order, so ``jobs`` never changes the output.
    """
    points = build_fig15_points(
        nodes=nodes, skews=skews, events=events, rate_ops_s=rate_ops_s,
        sessions=sessions, max_in_flight=max_in_flight,
        queue_limit=queue_limit, duration_ms=duration_ms,
        warmup_ms=warmup_ms, cooldown_ms=cooldown_ms,
        event_at_ms=event_at_ms, record_count=record_count,
        stream_batch_items=stream_batch_items, vnodes=vnodes,
        workload=workload, preload=preload, seed=seed)
    return run_sweep(points, run_fig15_point, jobs=jobs).records()


#: Tier-2 scale of the million-key cell: enough records that every replica
#: holds about two million rows, which only the columnar backend makes
#: practical (see :mod:`repro.cassandra_sim.storage`).
MILLION_KEY_RECORD_COUNT = 4_000_000


def build_fig15_million_points(
        record_count: int = MILLION_KEY_RECORD_COUNT,
        seed: int = 42) -> List[SweepPoint]:
    """The tier-2 multi-million-key cell of the Figure 15 grid.

    One (6-node, zipf-0.99, join) cell at a record count far past the
    columnar threshold: the preload bulk-loads every replica's columns,
    the join streams multi-hundred-thousand-key ranges (larger stream
    batches keep the event count proportionate), and the standard
    zero-lost-acked-writes audit runs over the rebalance.  Slow-marked in
    the test suite; not part of the committed quick figure.
    """
    return build_fig15_points(
        nodes=(6,), skews=("zipf-0.99",), events=("join",),
        rate_ops_s=300.0, sessions=100, max_in_flight=64, queue_limit=256,
        duration_ms=4_000.0, warmup_ms=500.0, cooldown_ms=250.0,
        event_at_ms=1_500.0, record_count=record_count,
        stream_batch_items=512, seed=seed)


def run_fig15_million(record_count: int = MILLION_KEY_RECORD_COUNT,
                      seed: int = 42, jobs: JobsSpec = 1) -> List[Dict]:
    """Run the tier-2 multi-million-key join cell (see the point builder)."""
    points = build_fig15_million_points(record_count=record_count, seed=seed)
    return run_sweep(points, run_fig15_point, jobs=jobs).records()


def format_fig15(records: List[Dict]) -> str:
    """Render the figure: per-phase latency table plus a rebalance summary."""
    phase_headers = ["nodes", "skew", "event", "phase", "ops",
                     "prelim mean (ms)", "final mean (ms)", "final p99 (ms)",
                     "staleness (%)", "failed"]
    phase_rows = []
    for record in records:
        for phase in PHASES:
            phase_rows.append([
                record["nodes"], record["skew"], record["event"], phase,
                record[f"{phase}_ops"],
                record[f"{phase}_prelim_mean_ms"],
                record[f"{phase}_final_mean_ms"],
                record[f"{phase}_final_p99_ms"],
                record[f"{phase}_staleness_pct"],
                record[f"{phase}_failed"],
            ])
    summary_columns = ["nodes", "skew", "event", "rebalance_ms",
                       "ranges_moved", "keys_streamed", "stale_retries",
                       "writes_forwarded", "client_retries", "acked_writes",
                       "lost_acked_writes"]
    summary_headers = ["nodes", "skew", "event", "rebalance (ms)", "ranges",
                       "keys streamed", "stale retries", "fwd writes",
                       "client retries", "acked writes", "lost acked"]
    lines = [
        format_table(
            phase_headers, phase_rows,
            title=("Figure 15 — read latency and staleness before/during/"
                   "after a live ring rebalance (open-loop Poisson load, "
                   "cluster size x key skew x join/decommission)")),
        "",
        format_table(
            summary_headers,
            [[record[c] for c in summary_columns] for record in records],
            title=("Figure 15 (cont.) — rebalance mechanics per cell; "
                   "'lost acked' must be 0: every acknowledged write "
                   "survives the ownership change")),
    ]
    return "\n".join(lines)
