"""Figure 8 — client-replica bandwidth per operation (C1 vs CC2 vs *CC2)."""

import pytest

from repro.bench.fig08_bandwidth import format_fig08, run_fig08


@pytest.mark.benchmark(group="fig08")
def test_fig08_bandwidth_overhead(benchmark, save_report):
    records = benchmark.pedantic(
        run_fig08,
        kwargs=dict(systems=("C1", "CC2", "*CC2"),
                    configs=(("A", "latest"), ("A", "zipfian"),
                             ("B", "latest"), ("B", "zipfian")),
                    threads=40, duration_ms=8_000.0, warmup_ms=2_000.0,
                    cooldown_ms=1_000.0, record_count=1_000, seed=42),
        rounds=1, iterations=1)
    save_report("fig08_bandwidth", format_fig08(records))

    for workload, distribution in (("A", "latest"), ("B", "latest")):
        rows = {r["system"]: r for r in records
                if r["workload"] == workload
                and r["distribution"] == distribution}
        # ICG costs bandwidth; the confirmation optimization recovers most of it.
        assert rows["C1"]["kb_per_op"] < rows["*CC2"]["kb_per_op"] < \
            rows["CC2"]["kb_per_op"]

    # The optimization helps more when divergence is low (workload B) than
    # when it is high (workload A-Latest), as in the paper's 15 % vs 27 %.
    def optimized_overhead(workload):
        rows = {r["system"]: r for r in records
                if r["workload"] == workload and r["distribution"] == "latest"}
        return rows["*CC2"]["overhead_vs_c1_pct"]

    assert optimized_overhead("B") <= optimized_overhead("A") + 1.0
