"""Drives fault schedules against a live simulation environment.

The :class:`FaultInjector` is the imperative arm of :mod:`repro.faults`: it
resolves the symbolic targets of a :class:`~repro.faults.schedule.FaultSchedule`
(e.g. ``"replica:1"``, ``"leader"``) to concrete node names through an alias
table, schedules each event on the environment's scheduler, and keeps an
audit log of every fault it applied — so an experiment can report *what*
actually happened alongside *how the system behaved*.

Region endpoints (``"region:<name>"``) are passed through unresolved; the
:class:`~repro.sim.network.Network` understands them natively for partitions
and link degradation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.faults.schedule import FaultEvent, FaultSchedule, Scenario
from repro.sim.environment import SimEnvironment

#: Selector prefix that names a region rather than a node.
REGION_PREFIX = "region:"


@dataclass(frozen=True)
class AppliedFault:
    """One fault action the injector actually executed."""

    time_ms: float
    action: str
    target: str
    peer: str = ""
    value: float = 0.0


class FaultInjector:
    """Applies fault actions — scheduled or immediate — to a ``SimEnvironment``."""

    def __init__(self, env: SimEnvironment,
                 schedule: Optional[Union[FaultSchedule, Scenario]] = None,
                 aliases: Optional[Dict[str, str]] = None) -> None:
        self.env = env
        self.schedule = (schedule.schedule if isinstance(schedule, Scenario)
                         else schedule)
        self._aliases: Dict[str, str] = dict(aliases or {})
        #: Chronological record of every action applied.
        self.log: List[AppliedFault] = []

    # -- target resolution -------------------------------------------------
    def alias(self, selector: str, node_name: str) -> "FaultInjector":
        """Map a symbolic selector (e.g. ``"replica:0"``) to a node name."""
        self._aliases[selector] = node_name
        return self

    def resolve(self, selector: str) -> str:
        """Node name (or pass-through region endpoint) for ``selector``."""
        if selector.startswith(REGION_PREFIX):
            return selector
        if selector in self._aliases:
            return self._aliases[selector]
        if self.env.network.has_node(selector):
            return selector
        raise KeyError(f"cannot resolve fault target {selector!r}: not an "
                       f"alias ({sorted(self._aliases)}) nor a registered node")

    # -- arming a schedule --------------------------------------------------
    def arm(self, schedule: Optional[Union[FaultSchedule, Scenario]] = None,
            offset_ms: Optional[float] = None) -> int:
        """Schedule every event of ``schedule`` (default: the bound one).

        Event times are relative to ``offset_ms`` (default: the current
        simulated time).  Returns the number of events armed.
        """
        if isinstance(schedule, Scenario):
            schedule = schedule.schedule
        if schedule is None:
            schedule = self.schedule
        if schedule is None or not len(schedule):
            return 0
        base = self.env.now() if offset_ms is None else offset_ms
        for event in schedule:
            self.env.scheduler.schedule_at(base + event.at_ms,
                                           self._fire, event)
        return len(schedule)

    def _fire(self, event: FaultEvent) -> None:
        handler = getattr(self, event.action)
        if event.action in ("partition", "heal", "degrade_link", "restore_link"):
            if event.action == "degrade_link":
                handler(event.target, event.peer, event.value)
            else:
                handler(event.target, event.peer)
        elif event.action == "slow":
            handler(event.target, event.value)
        else:
            handler(event.target)

    # -- immediate actions ---------------------------------------------------
    def _record(self, action: str, target: str, peer: str = "",
                value: float = 0.0) -> None:
        self.log.append(AppliedFault(self.env.now(), action, target,
                                     peer=peer, value=value))

    def crash(self, target: str) -> None:
        """Crash a node (messages to it are dropped until recovery)."""
        name = self.resolve(target)
        self.env.network.node(name).crash()
        self._record("crash", name)

    def recover(self, target: str) -> None:
        name = self.resolve(target)
        self.env.network.node(name).recover()
        self._record("recover", name)

    def partition(self, target: str, peer: str) -> None:
        """Cut connectivity between two nodes or two ``region:`` endpoints."""
        a, b = self.resolve(target), self.resolve(peer)
        if a.startswith(REGION_PREFIX) != b.startswith(REGION_PREFIX):
            raise ValueError("partition endpoints must both be nodes or both "
                             f"be regions, got {a!r} and {b!r}")
        if a.startswith(REGION_PREFIX):
            self.env.network.partition_regions(a[len(REGION_PREFIX):],
                                               b[len(REGION_PREFIX):])
        else:
            self.env.network.partition(a, b)
        self._record("partition", a, peer=b)

    def heal(self, target: str, peer: str) -> None:
        a, b = self.resolve(target), self.resolve(peer)
        if a.startswith(REGION_PREFIX):
            self.env.network.heal_regions(a[len(REGION_PREFIX):],
                                          b[len(REGION_PREFIX):])
        else:
            self.env.network.heal(a, b)
        self._record("heal", a, peer=b)

    def degrade_link(self, target: str, peer: str, extra_ms: float) -> None:
        """Add ``extra_ms`` one-way latency between two endpoints."""
        a, b = self.resolve(target), self.resolve(peer)
        self.env.network.degrade_link(a, b, extra_ms)
        self._record("degrade_link", a, peer=b, value=extra_ms)

    def restore_link(self, target: str, peer: str) -> None:
        a, b = self.resolve(target), self.resolve(peer)
        self.env.network.restore_link(a, b)
        self._record("restore_link", a, peer=b)

    def slow(self, target: str, factor: float) -> None:
        """Multiply a node's service times by ``factor``."""
        name = self.resolve(target)
        self.env.network.node(name).slow_down(factor)
        self._record("slow", name, value=factor)

    def restore_speed(self, target: str) -> None:
        name = self.resolve(target)
        self.env.network.node(name).restore_speed()
        self._record("restore_speed", name)
