"""Client node for the simulated ZooKeeper ensemble.

Offers the low-level znode operations (``create``, ``delete``, ``get``,
``get_children``) plus the queue-oriented operations used by Correctable
ZooKeeper (``enqueue``, ``dequeue``).  Every operation takes callbacks; an
operation submitted with ``icg=True`` receives a preliminary callback from
the contacted server's local simulation before the final (Zab-committed)
result arrives.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.retry import RetryPolicy
from repro.sim.failover import FailoverMixin
from repro.sim.network import MESSAGE_HEADER_BYTES, Message, Network
from repro.sim.node import Node
from repro.zookeeper_sim.config import ZooKeeperConfig

#: ``callback(response_dict)`` with keys ok/result/error/latency_ms.
ResponseCallback = Callable[[Dict[str, Any]], None]


@dataclass
class _PendingRequest:
    op: str
    sent_at: float
    on_preliminary: Optional[ResponseCallback] = None
    on_final: Optional[ResponseCallback] = None
    metadata: Dict[str, Any] = field(default_factory=dict)
    #: Failover state: the request payload for re-sends, retry count, and
    #: the pending client-side timeout event.
    request: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 0
    attempts: int = 0
    rotation_index: int = 0
    timeout_event: Optional[Any] = None


class ZKClient(FailoverMixin, Node):
    """A client connected to one server of the ensemble.

    With ``config.request_timeout_ms`` set and ``ensemble`` given, a request
    that receives no final response in time is re-issued to the next server
    of the ensemble — which is how sessions fail over when the contacted
    server (or the leader behind it) crashes.
    """

    def __init__(self, name: str, region: str, network: Network,
                 server: str, config: ZooKeeperConfig,
                 host: Optional[str] = None,
                 ensemble: Optional[Sequence[str]] = None) -> None:
        super().__init__(name, region, network, host=host)
        self.server = server
        self.config = config
        self._servers: List[str] = [server] + [
            s for s in (ensemble or []) if s != server]
        self._req_ids = itertools.count(1)
        self._pending: Dict[int, _PendingRequest] = {}
        self.requests_sent = 0
        # Fault-path instrumentation (stays zero with timeouts disabled).
        self.retries = 0
        self.failed_requests = 0

    # -- generic request plumbing -------------------------------------------
    def submit(self, op: str, path: str, data: Any = None,
               sequential: bool = False, icg: bool = False,
               on_preliminary: Optional[ResponseCallback] = None,
               on_final: Optional[ResponseCallback] = None,
               request_size: Optional[int] = None) -> int:
        """Send one operation to the connected server; returns the request id."""
        req_id = next(self._req_ids)
        self.requests_sent += 1
        if request_size is None:
            request_size = (MESSAGE_HEADER_BYTES + self.config.path_size_bytes
                            + (self.config.element_size_bytes if data is not None
                               else 0))
        pending = _PendingRequest(
            op=op, sent_at=self.scheduler.now(),
            on_preliminary=on_preliminary, on_final=on_final,
            request={"req_id": req_id, "op": op, "path": path, "data": data,
                     "sequential": sequential, "icg": icg},
            size_bytes=request_size)
        self._pending[req_id] = pending
        self._dispatch(pending)
        return req_id

    # -- dispatch & failover (see FailoverMixin) ----------------------------------
    def _dispatch(self, pending: _PendingRequest) -> None:
        server = self._servers[pending.rotation_index % len(self._servers)]
        self.send(server, "zk_request", dict(pending.request),
                  size_bytes=pending.size_bytes)
        self._arm_request_timeout(pending, pending.request["req_id"],
                                  self.config.request_timeout_ms)

    def _redispatch(self, pending: _PendingRequest) -> None:
        self._dispatch(pending)

    def _failover_retries(self) -> int:
        return self.config.client_retries

    def _retry_policy(self) -> RetryPolicy:
        policy = self._failover_policy
        if policy is None:
            policy = RetryPolicy(
                max_retries=self.config.client_retries,
                base_delay_ms=self.config.client_backoff_base_ms,
                multiplier=self.config.client_backoff_multiplier,
                cap_ms=self.config.client_backoff_cap_ms,
                jitter_ms=self.config.client_backoff_jitter_ms,
                label=f"failover:{self.name}")
            self._failover_policy = policy
        return policy

    def _timeout_failure_response(self, pending: _PendingRequest) -> Dict[str, Any]:
        return {
            "ok": False,
            "result": None,
            "error": "client timeout: no server responded",
            "latency_ms": self.scheduler.now() - pending.sent_at,
            "preliminary": False,
        }

    # -- convenience wrappers ---------------------------------------------------
    def create(self, path: str, data: Any = None, sequential: bool = False,
               icg: bool = False,
               on_preliminary: Optional[ResponseCallback] = None,
               on_final: Optional[ResponseCallback] = None) -> int:
        return self.submit("create", path, data=data, sequential=sequential,
                           icg=icg, on_preliminary=on_preliminary,
                           on_final=on_final)

    def delete(self, path: str,
               on_final: Optional[ResponseCallback] = None) -> int:
        return self.submit("delete", path, on_final=on_final)

    def get(self, path: str,
            on_final: Optional[ResponseCallback] = None) -> int:
        return self.submit("get", path, on_final=on_final)

    def get_children(self, path: str,
                     on_final: Optional[ResponseCallback] = None) -> int:
        return self.submit("get_children", path, on_final=on_final)

    def enqueue(self, queue_path: str, item: Any, icg: bool = False,
                on_preliminary: Optional[ResponseCallback] = None,
                on_final: Optional[ResponseCallback] = None) -> int:
        """Append ``item`` to the queue (a sequential create under the queue)."""
        return self.submit("enqueue", queue_path, data=item, icg=icg,
                           on_preliminary=on_preliminary, on_final=on_final)

    def dequeue(self, queue_path: str, icg: bool = False,
                on_preliminary: Optional[ResponseCallback] = None,
                on_final: Optional[ResponseCallback] = None) -> int:
        """Atomically remove the queue head (server-side, constant-size messages)."""
        return self.submit("dequeue", queue_path, icg=icg,
                           on_preliminary=on_preliminary, on_final=on_final)

    # -- responses ------------------------------------------------------------------
    def on_zk_preliminary(self, message: Message) -> None:
        payload = message.payload
        pending = self._pending.get(payload["req_id"])
        if pending is None or pending.on_preliminary is None:
            return
        pending.on_preliminary({
            "ok": payload["ok"],
            "result": payload["result"],
            "error": None,
            "latency_ms": self.scheduler.now() - pending.sent_at,
            "preliminary": True,
        })

    def on_zk_response(self, message: Message) -> None:
        payload = message.payload
        pending = self._pending.pop(payload["req_id"], None)
        if pending is None:
            return
        self._settle(pending)
        if pending.on_final is not None:
            pending.on_final({
                "ok": payload["ok"],
                "result": payload.get("result"),
                "error": payload.get("error"),
                "latency_ms": self.scheduler.now() - pending.sent_at,
                "preliminary": False,
            })
