"""Consistency levels.

The Correctables API is *consistency-based*: applications name the guarantee
they want and bindings decide how to achieve it.  Levels are totally ordered
by strength so the library can (a) sort the levels a binding advertises from
weakest to strongest and (b) decide which incoming view closes a Correctable.

Four levels cover every binding shipped with this reproduction:

* ``CACHED``  — served from a client-side cache; may be arbitrarily stale.
* ``WEAK``    — eventual consistency (one replica, no coordination).
* ``CAUSAL``  — causally consistent store.
* ``STRONG``  — linearizable (quorum or leader-coordinated).

Bindings are free to register additional levels (e.g. per-quorum-size levels)
through :meth:`ConsistencyLevel.register`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Dict, Iterable, List


@dataclass(frozen=True, order=False)
class ConsistencyLevel:
    """A named consistency guarantee with a total strength order."""

    name: str
    strength: int

    # -- ordering --------------------------------------------------------
    def __lt__(self, other: "ConsistencyLevel") -> bool:
        return self.strength < other.strength

    def __le__(self, other: "ConsistencyLevel") -> bool:
        return self.strength <= other.strength

    def __gt__(self, other: "ConsistencyLevel") -> bool:
        return self.strength > other.strength

    def __ge__(self, other: "ConsistencyLevel") -> bool:
        return self.strength >= other.strength

    def __str__(self) -> str:
        return self.name

    # -- registry --------------------------------------------------------
    _registry: ClassVar[Dict[str, "ConsistencyLevel"]] = {}

    @classmethod
    def register(cls, name: str, strength: int) -> "ConsistencyLevel":
        """Create (or fetch) a level; re-registering must keep the strength."""
        existing = cls._registry.get(name)
        if existing is not None:
            if existing.strength != strength:
                raise ValueError(
                    f"consistency level {name!r} already registered with "
                    f"strength {existing.strength}, not {strength}"
                )
            return existing
        level = cls(name=name, strength=strength)
        cls._registry[name] = level
        return level

    @classmethod
    def by_name(cls, name: str) -> "ConsistencyLevel":
        """Look up a registered level by name."""
        try:
            return cls._registry[name]
        except KeyError:
            raise KeyError(f"unknown consistency level: {name!r}") from None

    @classmethod
    def known_levels(cls) -> List["ConsistencyLevel"]:
        """All registered levels, weakest first."""
        return sorted(cls._registry.values(), key=lambda lv: lv.strength)


def sort_levels(levels: Iterable[ConsistencyLevel]) -> List[ConsistencyLevel]:
    """Return ``levels`` ordered weakest-to-strongest with duplicates removed."""
    seen = set()
    unique = []
    for level in levels:
        if level.name not in seen:
            seen.add(level.name)
            unique.append(level)
    return sorted(unique, key=lambda lv: lv.strength)


#: ``(requested, available) -> validated list``.  Both the client and the
#: binding it submits to validate the same request (each is also usable on
#: its own), and level sets are tiny and static, so successful validations
#: are memoized — the second layer costs a dict lookup, not two sorts.
_VALIDATION_CACHE: Dict[tuple, List[ConsistencyLevel]] = {}


def validate_levels(requested: Iterable[ConsistencyLevel],
                    available: Iterable[ConsistencyLevel]
                    ) -> List[ConsistencyLevel]:
    """``requested`` sorted weakest-first, checked against ``available``.

    The one level-validation routine shared by :class:`CorrectableClient`
    and every :class:`~repro.bindings.base.Binding` (the bindings used to
    hand-roll this check each in their own way).  Raises
    ``UnsupportedConsistencyError`` when the request is empty or asks for a
    level the binding does not advertise, and ``BindingError`` when the
    binding advertises nothing at all.
    """
    from repro.core.errors import BindingError, UnsupportedConsistencyError

    cache_key = (tuple(requested), tuple(available))
    validated = _VALIDATION_CACHE.get(cache_key)
    if validated is None:
        available = sort_levels(cache_key[1])
        if not available:
            raise BindingError("binding advertises no consistency levels")
        validated = sort_levels(cache_key[0])
        if not validated:
            raise UnsupportedConsistencyError(validated, available)
        missing = [level for level in validated if level not in available]
        if missing:
            raise UnsupportedConsistencyError(missing, available)
        _VALIDATION_CACHE[cache_key] = validated
    # A fresh list per call: callers treat the result as their own.
    return list(validated)


def strongest(levels: Iterable[ConsistencyLevel]) -> ConsistencyLevel:
    """The strongest level in ``levels`` (raises ``ValueError`` if empty)."""
    ordered = sort_levels(levels)
    if not ordered:
        raise ValueError("no consistency levels given")
    return ordered[-1]


def weakest(levels: Iterable[ConsistencyLevel]) -> ConsistencyLevel:
    """The weakest level in ``levels`` (raises ``ValueError`` if empty)."""
    ordered = sort_levels(levels)
    if not ordered:
        raise ValueError("no consistency levels given")
    return ordered[0]


#: Served from a client-side cache; may be arbitrarily stale.
CACHED = ConsistencyLevel.register("cached", 0)
#: Eventual consistency — a single replica's local state.
WEAK = ConsistencyLevel.register("weak", 10)
#: Causal consistency.
CAUSAL = ConsistencyLevel.register("causal", 20)
#: Linearizability — quorum reads or leader-coordinated operations.
STRONG = ConsistencyLevel.register("strong", 30)
