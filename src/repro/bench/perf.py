"""Wall-clock performance harness for the simulator core.

Every figure harness runs on simulated time, so the paper's numbers never
depend on how fast the host executes events — but the *time to produce* a
figure does.  This module measures that: it drives representative scenarios
from the evaluation (the fig06 closed-loop YCSB load, the fig09 ZooKeeper
queue, and a fig13 fault script) on real wall-clock time and reports
events/second and operations/second for each.

Results accumulate in ``BENCH_perf.json`` at the repository root so the
project keeps a performance trajectory across PRs::

    python -m repro.bench perf                 # full scale, append an entry
    python -m repro.bench perf --quick         # small scale (CI smoke)
    python -m repro.bench perf --profile 25    # cProfile top-25 per scenario
    python -m repro.bench perf --check-regression   # gate: fail on >2x slowdown
    python -m repro.bench perf --jobs 4        # scenarios across 4 processes
    python -m repro.bench perf --show-budget   # committed vs fresh profile budget

The scenarios are deterministic: for a given scale the event and operation
counts never change, only the wall-clock time does.  Speedups are reported
against the oldest recorded entry at the same scale (the pre-optimization
baseline).  The ``fig06-sweep-serial``/``fig06-sweep-parallel`` pair runs
the same multi-point grid through :mod:`repro.bench.sweep` at one and two
worker processes; the ratio of their recorded wall times is the committed
multiprocess speedup of figure regeneration.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.bench.common import (
    build_cassandra_scenario,
    cassandra_config_for,
    make_generator_factory,
    make_kv_issue,
    run_multi_region_load,
)
from repro.bench.sweep import (
    JobsSpec,
    SweepPoint,
    make_points,
    point_seed,
    pool_context,
    resolve_jobs,
    run_sweep,
)
from repro.cassandra_sim.config import CassandraConfig
from repro.faults import FaultInjector, cassandra_aliases, get_scenario
from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region
from repro.workloads.runner import ClosedLoopRunner
from repro.workloads.ycsb import workload_by_name
from repro.zookeeper_sim.cluster import ZooKeeperCluster

#: Default location of the perf trajectory, resolved against the cwd (the
#: repository root in CI and in the documented invocations).
DEFAULT_RESULTS_PATH = Path("BENCH_perf.json")

#: Wall-clock slack tolerated by ``--check-regression`` before failing.
REGRESSION_FACTOR = 2.0


# ---------------------------------------------------------------------------
# scenario implementations
# ---------------------------------------------------------------------------

def run_closed_loop_scenario(threads_per_client: int = 24,
                             duration_ms: float = 10_000.0,
                             warmup_ms: float = 2_000.0,
                             cooldown_ms: float = 1_000.0,
                             record_count: int = 1_000,
                             system: str = "CC2",
                             workload: str = "A",
                             seed: int = 42) -> Dict[str, int]:
    """fig06-style closed-loop YCSB load against Correctable Cassandra."""
    spec = workload_by_name(workload)
    scenario = build_cassandra_scenario(
        seed=seed, record_count=record_count,
        client_regions=(Region.IRL, Region.FRK, Region.VRG),
        config=cassandra_config_for(system))
    results = run_multi_region_load(
        scenario, system, spec, threads_per_client=threads_per_client,
        duration_ms=duration_ms, warmup_ms=warmup_ms,
        cooldown_ms=cooldown_ms, seed=seed, use_histograms=True)
    return {
        "events": scenario.env.scheduler.events_executed,
        "ops": sum(result.total_ops for result in results.values()),
    }


def run_zk_queue_scenario(samples: int = 600, seed: int = 7) -> Dict[str, int]:
    """fig09-style ICG enqueues against a ZooKeeper ensemble (leader in VRG)."""
    env = SimEnvironment(seed=seed)
    cluster = ZooKeeperCluster(env, leader_region=Region.VRG,
                               follower_regions=[Region.IRL, Region.FRK])
    client = cluster.add_client("perf-zk-client", region=Region.IRL,
                                connect_region=Region.IRL)
    for server in cluster.servers:
        server.tree.create("/queue")
    state = {"remaining": samples, "done": 0}

    def _issue_next() -> None:
        if state["remaining"] <= 0:
            return
        state["remaining"] -= 1
        client.enqueue("/queue", f"element-{state['remaining']}", icg=True,
                       on_final=lambda resp: (_finish(), _issue_next()))

    def _finish() -> None:
        state["done"] += 1

    _issue_next()
    env.run_until_idle()
    return {"events": env.scheduler.events_executed, "ops": state["done"]}


def run_fault_scenario(threads_per_client: int = 4,
                       duration_ms: float = 8_000.0,
                       warmup_ms: float = 2_000.0,
                       cooldown_ms: float = 500.0,
                       record_count: int = 300,
                       scenario_name: str = "replica-crash",
                       workload: str = "B",
                       seed: int = 42) -> Dict[str, int]:
    """fig13-style closed-loop load while a fault script injects failures."""
    spec = workload_by_name(workload).with_distribution("zipfian")
    built = build_cassandra_scenario(
        seed=seed, record_count=record_count,
        client_regions=(Region.IRL, Region.FRK, Region.VRG),
        config=CassandraConfig.fault_tolerant(),
        client_fallbacks=True)
    injector = FaultInjector(built.env, schedule=get_scenario(scenario_name),
                             aliases=cassandra_aliases(built.cluster))
    runners: List[ClosedLoopRunner] = []
    for index, (region, client) in enumerate(built.clients.items()):
        runners.append(ClosedLoopRunner(
            scheduler=built.env.scheduler,
            issue=make_kv_issue(client, "CC2"),
            make_generator=make_generator_factory(
                spec, built.dataset, seed, f"perf-fault-{region}"),
            threads=threads_per_client,
            duration_ms=duration_ms,
            warmup_ms=warmup_ms,
            cooldown_ms=cooldown_ms,
            label=f"perf-fault-{region}",
            faults=injector if index == 0 else None,
        ))
    for runner in runners:
        runner.start()
    built.env.run(until=max(r.end_time for r in runners) + 60_000.0)
    return {
        "events": built.env.scheduler.events_executed,
        "ops": sum(r.result.total_ops for r in runners),
    }


def run_open_loop_scenario(binding: str = "cassandra",
                           rate_ops_s: float = 800.0,
                           policy: str = "queue",
                           sessions: int = 1_000,
                           max_in_flight: int = 16,
                           queue_limit: int = 64,
                           duration_ms: float = 12_000.0,
                           warmup_ms: float = 2_000.0,
                           cooldown_ms: float = 1_000.0,
                           record_count: int = 500,
                           seed: int = 42) -> Dict[str, int]:
    """fig14-style open-loop Poisson load past saturation, with admission.

    Exercises the load-engine paths the closed-loop scenario never touches:
    per-arrival scheduling, session round-robin over a large pool, the
    bounded in-flight admission queue, and queue-delay accounting.  The
    stack is the figure's own (:func:`~repro.bench.fig14_open_loop.
    build_session_stack` / :func:`~repro.bench.fig14_open_loop.
    open_loop_runner`), so this scenario always benchmarks exactly the
    configuration fig14 measures.
    """
    from repro.bench.fig14_open_loop import build_session_stack, open_loop_runner

    stack = build_session_stack(binding, seed=seed,
                                record_count=record_count, sessions=sessions)
    label = f"perf-open-loop-{binding}-{policy}-{rate_ops_s}"
    runner = open_loop_runner(
        stack, seed=seed, label=label, rate_ops_s=rate_ops_s,
        duration_ms=duration_ms, warmup_ms=warmup_ms,
        cooldown_ms=cooldown_ms, max_in_flight=max_in_flight,
        policy=policy, queue_limit=queue_limit, use_histograms=True)
    result = runner.run()
    return {
        "events": stack.env.scheduler.events_executed,
        "ops": result.total_ops,
    }


def run_txn_scenario(scenario_name: str = "coordinator-crash-mid-commit",
                     keys_per_txn: int = 2, nodes: int = 6,
                     coordinators: int = 2, rate_txn_s: float = 40.0,
                     duration_ms: float = 10_000.0,
                     fault_at_ms: float = 4_000.0,
                     fault_duration_ms: float = 4_000.0,
                     decision_log_ms: float = 2.0,
                     record_count: int = 200,
                     seed: int = 42) -> Dict[str, int]:
    """fig16-style 2PC transactions driven through a coordinator takeover.

    Exercises the transaction layer's hot paths end to end — prepare
    fan-out and vote collection, participant logging and locking, the
    heartbeat/election machinery, takeover log reconstruction, decision
    redelivery, and the client's balancer/backoff retries — and runs the
    atomicity audit before returning (a violation fails the scenario).
    """
    from repro.bench.fig16_txn import run_fig16_cell

    record, env = run_fig16_cell(
        scenario=scenario_name, keys_per_txn=keys_per_txn, nodes=nodes,
        coordinators=coordinators, rate_txn_s=rate_txn_s,
        duration_ms=duration_ms, fault_at_ms=fault_at_ms,
        fault_duration_ms=fault_duration_ms, decision_log_ms=decision_log_ms,
        record_count=record_count, seed=seed)
    return {"events": env.scheduler.events_executed,
            "ops": record["submitted"]}


def run_million_key_scenario(record_count: int = 1_000_000, nodes: int = 6,
                             rate_ops_s: float = 400.0, sessions: int = 200,
                             max_in_flight: int = 64, queue_limit: int = 256,
                             duration_ms: float = 4_000.0,
                             warmup_ms: float = 500.0,
                             cooldown_ms: float = 250.0,
                             event_at_ms: float = 1_500.0,
                             skew: str = "zipf-0.99",
                             seed: int = 42) -> Dict[str, int]:
    """fig15-style columnar ring at million-key scale through a join.

    Builds a ring whose preload crosses ``columnar_threshold_keys`` (every
    replica flips to :class:`~repro.cassandra_sim.storage.ColumnarTable`),
    runs an open-loop read/write mix while a node joins mid-run, then
    drains and audits the zero-lost-acked-writes invariant.  The measured
    wall covers dataset generation, the bulk preload, the rebalance run and
    the audit — the full million-key figure cost the columnar backend
    exists to bound.  ``keys`` in the result is the preloaded record count
    (so the committed trajectory records the scale next to the rate).
    """
    from repro.bench.fig15_rebalance import (
        CLIENT_REGIONS, count_lost_acked_writes, make_rebalance_issue,
        skew_workload)
    from repro.cassandra_sim.storage import ColumnarTable
    from repro.core.cluster_spec import ClusterSpec
    from repro.sim.rand import derive_rng
    from repro.sim.topology import round_robin_regions
    from repro.workloads.arrivals import make_arrival_process
    from repro.workloads.runner import OpenLoopRunner
    from repro.workloads.ycsb import OperationGenerator

    label = f"perf-million-key-{record_count}"
    built = ClusterSpec(nodes=nodes, config=cassandra_config_for("CC2"),
                        seed=seed, record_count=record_count,
                        client_regions=CLIENT_REGIONS,
                        client_fallbacks=True).build()
    cluster = built.cluster
    if not isinstance(cluster.replicas[0].table, ColumnarTable):
        raise RuntimeError(
            f"{label}: preload of {record_count} keys did not engage the "
            f"columnar backend (threshold/kill-switch misconfigured)")

    samples: List[Dict[str, Any]] = []
    acked: Dict[str, Any] = {}
    issue = make_rebalance_issue(
        [built.client_in(region) for region in CLIENT_REGIONS],
        built.env.scheduler.now, samples, acked)
    workload = skew_workload(skew, "A")
    runner = OpenLoopRunner(
        scheduler=built.env.scheduler, issue=issue,
        make_generator=lambda session_id: OperationGenerator.seeded(
            workload, built.dataset, seed, f"{label}-s{session_id}"),
        arrivals=make_arrival_process(
            "poisson", rate_ops_s, derive_rng(seed, f"{label}:arrivals")),
        sessions=sessions, duration_ms=duration_ms, warmup_ms=warmup_ms,
        cooldown_ms=cooldown_ms, label=label, max_in_flight=max_in_flight,
        policy="queue", queue_limit=queue_limit)
    joiner_region = round_robin_regions(nodes + 1)[-1]
    operation = cluster.join_node(f"cassandra-{nodes}-{joiner_region}",
                                  joiner_region, at_ms=event_at_ms)
    result = runner.run()
    built.env.run_until_idle()
    if not operation.done:
        raise RuntimeError(f"{label}: join rebalance did not complete")
    lost = count_lost_acked_writes(cluster, acked)
    if lost:
        raise RuntimeError(f"{label}: {lost} acknowledged writes lost "
                           f"across the rebalance")
    return {
        "events": built.env.scheduler.events_executed,
        "ops": result.total_ops,
        "keys": record_count,
        "keys_streamed": cluster.total_keys_streamed(),
    }


def _sweep_point(point: SweepPoint) -> Dict[str, int]:
    """One fig06-style grid cell: a full closed-loop sim, counted."""
    return run_closed_loop_scenario(**point.kwargs)


def build_sweep_scenario_points(systems: Sequence[str] = ("C1", "C2", "CC2"),
                                workloads: Sequence[str] = ("A", "B"),
                                thread_counts: Sequence[int] = (4,),
                                duration_ms: float = 8_000.0,
                                warmup_ms: float = 1_500.0,
                                cooldown_ms: float = 500.0,
                                record_count: int = 500,
                                seed: int = 42) -> List[SweepPoint]:
    """Each point's simulation seed is label-derived via ``point_seed``, so
    reordering or slicing the grid never changes any cell's numbers."""
    points = make_points("perf-fig06-sweep", (
        ({"system": system, "workload": workload, "threads": threads},
         dict(system=system, workload=workload, threads_per_client=threads,
              duration_ms=duration_ms, warmup_ms=warmup_ms,
              cooldown_ms=cooldown_ms, record_count=record_count))
        for workload in workloads
        for system in systems
        for threads in thread_counts))
    return [SweepPoint(index=point.index, family=point.family,
                       labels=point.labels,
                       kwargs={**point.kwargs,
                               "seed": point_seed(seed, point) % (2 ** 31)})
            for point in points]


def run_sweep_scenario(jobs: JobsSpec = 1,
                       systems: Sequence[str] = ("C1", "C2", "CC2"),
                       workloads: Sequence[str] = ("A", "B"),
                       thread_counts: Sequence[int] = (4,),
                       duration_ms: float = 8_000.0,
                       warmup_ms: float = 1_500.0,
                       cooldown_ms: float = 500.0,
                       record_count: int = 500,
                       seed: int = 42) -> Dict[str, Any]:
    """A multi-point fig06-style sweep through the sweep engine.

    Run at ``jobs=1`` and ``jobs=2`` as two scenarios, the recorded pair
    shows the multiprocess speedup of figure regeneration; the event and
    operation totals are identical at any job count (determinism).  Beyond
    events/ops the scenario reports per-point wall timings, which land in
    ``BENCH_perf.json``.
    """
    points = build_sweep_scenario_points(
        systems=systems, workloads=workloads, thread_counts=thread_counts,
        duration_ms=duration_ms, warmup_ms=warmup_ms, cooldown_ms=cooldown_ms,
        record_count=record_count, seed=seed)
    sweep = run_sweep(points, _sweep_point, jobs=jobs)
    records = sweep.records()
    return {
        "events": sum(record["events"] for record in records),
        "ops": sum(record["ops"] for record in records),
        "points": len(records),
        "sweep_jobs": sweep.jobs,
        "sweep_wall_s": round(sweep.wall_s, 4),
        "point_walls_s": [round(outcome.wall_s, 4)
                          for outcome in sweep.outcomes],
    }


#: scenario name -> (callable, full-scale kwargs, quick kwargs).
PERF_SCENARIOS: Dict[str, tuple] = {
    "fig06-closed-loop": (
        run_closed_loop_scenario,
        dict(threads_per_client=48, duration_ms=30_000.0,
             warmup_ms=5_000.0, cooldown_ms=2_000.0, record_count=1_000),
        dict(threads_per_client=8, duration_ms=8_000.0, warmup_ms=1_500.0,
             cooldown_ms=500.0, record_count=500),
    ),
    "fig09-zk-queue": (
        run_zk_queue_scenario,
        dict(samples=3_000),
        dict(samples=1_500),
    ),
    "fig13-replica-crash": (
        run_fault_scenario,
        dict(threads_per_client=8, duration_ms=20_000.0,
             warmup_ms=3_000.0, cooldown_ms=1_000.0, record_count=300),
        dict(threads_per_client=4, duration_ms=10_000.0, warmup_ms=2_000.0,
             cooldown_ms=500.0, record_count=300),
    ),
    "fig14-open-loop": (
        run_open_loop_scenario,
        dict(rate_ops_s=800.0, sessions=1_000, duration_ms=20_000.0,
             warmup_ms=3_000.0, cooldown_ms=1_000.0, record_count=500),
        dict(rate_ops_s=400.0, sessions=200, duration_ms=8_000.0,
             warmup_ms=1_500.0, cooldown_ms=500.0, record_count=200),
    ),
    "fig16-txn": (
        run_txn_scenario,
        dict(keys_per_txn=3, nodes=6, rate_txn_s=80.0,
             duration_ms=20_000.0, fault_at_ms=6_000.0,
             fault_duration_ms=6_000.0, record_count=300),
        dict(keys_per_txn=2, nodes=3, rate_txn_s=40.0,
             duration_ms=8_000.0, fault_at_ms=3_000.0,
             fault_duration_ms=3_000.0, record_count=150),
    ),
    # Columnar storage end to end: a million-key (quick: 150k, still past
    # the columnar threshold) preload, an open-loop run through a live
    # join, and the lost-acked-writes audit.  The floor on this scenario
    # perf-gates the whole columnar path — bulk preload included.
    "fig15-million-key": (
        run_million_key_scenario,
        dict(record_count=1_000_000, rate_ops_s=400.0,
             duration_ms=4_000.0, event_at_ms=1_500.0),
        dict(record_count=150_000, rate_ops_s=300.0, sessions=100,
             duration_ms=2_500.0, warmup_ms=400.0, cooldown_ms=200.0,
             event_at_ms=1_000.0),
    ),
    # The serial/parallel pair measures the sweep engine itself: identical
    # grids, identical event totals, only the job count differs — their
    # wall-clock ratio is the committed multiprocess speedup (on a
    # multi-core host; a single-core runner shows ~1x plus fork overhead).
    "fig06-sweep-serial": (
        run_sweep_scenario,
        dict(jobs=1),
        dict(jobs=1, systems=("C1", "CC2"), workloads=("A",),
             thread_counts=(2,), duration_ms=4_000.0, warmup_ms=1_000.0,
             cooldown_ms=500.0, record_count=300),
    ),
    "fig06-sweep-parallel": (
        run_sweep_scenario,
        dict(jobs=2),
        dict(jobs=2, systems=("C1", "CC2"), workloads=("A",),
             thread_counts=(2,), duration_ms=4_000.0, warmup_ms=1_000.0,
             cooldown_ms=500.0, record_count=300),
    ),
}


def scenario_names() -> Sequence[str]:
    return tuple(PERF_SCENARIOS)


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------

def _measure(fn: Callable[..., Dict[str, Any]], kwargs: Dict[str, Any],
             repeats: int) -> Dict[str, Any]:
    """Run ``fn`` ``repeats`` times; report the best wall-clock time.

    Any extra keys the scenario returns besides ``events``/``ops`` (e.g. the
    sweep scenarios' point count and per-point wall timings) are passed
    through into the recorded stats, taken from the same repeat that
    produced the reported best wall time so the recorded numbers are
    internally consistent.
    """
    walls: List[float] = []
    runs: List[Dict[str, Any]] = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        runs.append(fn(**kwargs))
        walls.append(time.perf_counter() - start)
    best = min(walls)
    counts = runs[walls.index(best)]
    stats = {
        "wall_s": round(best, 4),
        "runs_s": [round(w, 4) for w in walls],
        "events": counts["events"],
        "ops": counts["ops"],
        "events_per_s": round(counts["events"] / best, 1),
        "ops_per_s": round(counts["ops"] / best, 1),
    }
    stats.update({key: value for key, value in counts.items()
                  if key not in ("events", "ops")})
    return stats


#: Subsystem buckets for the profile budget table, matched in order against
#: each profiled function's source path (first hit wins, so the specific
#: ``sim/`` files route to scheduler/network before the generic protocol
#: bucket picks up the rest of ``repro/``).  Everything outside the package
#: (stdlib, builtins, the bench harness itself) lands in "other".
_BUDGET_BUCKETS: Sequence[tuple] = (
    ("scheduler", ("repro/sim/scheduler.py", "repro/sim/clock.py")),
    ("network", ("repro/sim/network.py", "repro/sim/topology.py",
                 "repro/sim/node.py")),
    ("workload", ("repro/workloads/",)),
    ("metrics", ("repro/metrics/",)),
    ("protocol", ("repro/cassandra_sim/", "repro/zookeeper_sim/",
                  "repro/txn/", "repro/bindings/", "repro/core/",
                  "repro/faults", "repro/sim/")),
)


def _budget_bucket(filename: str) -> str:
    path = filename.replace("\\", "/")
    for bucket, needles in _BUDGET_BUCKETS:
        for needle in needles:
            if needle in path:
                return bucket
    return "other"


def budget_from_profiler(profiler: cProfile.Profile) -> Dict[str, Any]:
    """Aggregate a profile into per-subsystem self-time shares.

    Shares are fractions of the profiled run's total self time, so they
    stay comparable across hosts and scales even though cProfile inflates
    absolute wall time.  Persisted per scenario in BENCH_perf.json so a
    future regression names its subsystem, not just its magnitude.
    """
    totals: Dict[str, float] = {bucket: 0.0 for bucket, _ in _BUDGET_BUCKETS}
    totals["other"] = 0.0
    stats = pstats.Stats(profiler)
    grand = 0.0
    for (filename, _lineno, _name), (_cc, _nc, tt, _ct, _callers) \
            in stats.stats.items():  # type: ignore[attr-defined]
        totals[_budget_bucket(filename)] += tt
        grand += tt
    budget = {"profiled_s": round(grand, 4)}
    budget["shares"] = {
        bucket: round(seconds / grand, 4) if grand > 0 else 0.0
        for bucket, seconds in totals.items()}
    return budget


def format_budget(name: str, budget: Dict[str, Any]) -> str:
    """Render one scenario's budget table (shares of profiled self time)."""
    from repro.metrics.summary import format_table

    shares = budget["shares"]
    order = [bucket for bucket, _ in _BUDGET_BUCKETS] + ["other"]
    rows = [[bucket, f"{shares[bucket] * 100.0:.1f}%",
             round(shares[bucket] * budget["profiled_s"], 3)]
            for bucket in order]
    return format_table(
        ["subsystem", "share", "self (s)"], rows,
        title=f"Profile budget: {name} ({budget['profiled_s']:.2f}s "
              f"profiled self time)")


def format_budget_comparison(name: str, fresh: Dict[str, Any],
                             committed: Optional[Dict[str, Any]]) -> str:
    """Render one scenario's fresh profile next to its committed budget.

    The delta column is in percentage points of profiled self time — the
    same units :func:`check_budget_drift` gates on — so a reviewer can read
    how far a scenario sits from tripping the drift allowance before
    committing a re-recorded entry.
    """
    from repro.metrics.summary import format_table

    order = [bucket for bucket, _ in _BUDGET_BUCKETS] + ["other"]
    rows = []
    for bucket in order:
        share = fresh["shares"].get(bucket, 0.0)
        if committed is None:
            rows.append([bucket, "-", f"{share * 100.0:.1f}%", "-"])
            continue
        ref = committed["shares"].get(bucket, 0.0)
        rows.append([bucket, f"{ref * 100.0:.1f}%", f"{share * 100.0:.1f}%",
                     f"{(share - ref) * 100.0:+.1f}"])
    title = f"Budget vs committed: {name}"
    if committed is None:
        title += " (no committed budget at this scale — fresh only)"
    return format_table(["subsystem", "committed", "fresh", "delta (pts)"],
                        rows, title=title)


#: Scenario executions accumulated into one profiler per scenario.  A
#: single pass gives shares noisy enough (several points run-to-run on the
#: sub-second quick scenarios) to trip the 10-point drift gate on jitter;
#: three passes through the same profiler average the shares at negligible
#: cost (the profiled pass is already separate from the timed repeats).
_PROFILE_PASSES = 3


def _profile(fn: Callable[..., Dict[str, int]], kwargs: Dict[str, Any],
             top: int) -> tuple:
    """Profiled runs (accumulated); returns ``(top-N text, budget)``."""
    profiler = cProfile.Profile()
    for _ in range(_PROFILE_PASSES):
        profiler.enable()
        fn(**kwargs)
        profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return buffer.getvalue(), budget_from_profiler(profiler)


def run_perf(scenarios: Optional[Sequence[str]] = None, quick: bool = False,
             repeats: int = 3, profile_top: int = 0,
             seed: Optional[int] = None, jobs: JobsSpec = 1,
             collect_budget: bool = False,
             echo: Callable[[str], None] = print) -> Dict[str, Any]:
    """Measure every requested scenario; returns the scenario -> stats map.

    ``seed`` overrides each scenario's default seed; note that the recorded
    event/ops counts are seed-specific, so gate comparisons only make sense
    between runs at the same seed (the default).

    ``jobs`` fans whole scenarios across worker processes (each scenario's
    repeats stay inside one worker).  Co-scheduled scenarios contend for
    cores, so per-scenario wall times are only comparable between runs at
    the same ``jobs``; the trajectory records the job count per entry for
    exactly that reason.  Profiling (``profile_top`` or ``collect_budget``)
    forces serial execution.

    ``collect_budget`` records each scenario's ``profile_budget`` even when
    ``profile_top`` is 0, without printing the top-N listing or the budget
    table — the ``--show-budget`` comparison does its own rendering.
    """
    jobs = resolve_jobs(jobs)
    names = list(scenarios) if scenarios else list(PERF_SCENARIOS)
    tasks: List[tuple] = []
    for name in names:
        if name not in PERF_SCENARIOS:
            raise KeyError(f"unknown perf scenario {name!r}; "
                           f"choose from {list(PERF_SCENARIOS)}")
        fn, full_kwargs, quick_kwargs = PERF_SCENARIOS[name]
        kwargs = dict(quick_kwargs if quick else full_kwargs)
        if seed is not None:
            kwargs["seed"] = seed
        tasks.append((name, fn, kwargs))
    measured: Dict[str, Any] = {}
    if jobs == 1 or profile_top > 0 or collect_budget or len(tasks) <= 1:
        for name, fn, kwargs in tasks:
            measured[name] = _measure(fn, kwargs, repeats)
            if profile_top > 0 or collect_budget:
                # The profiled run is separate from the timed repeats, so
                # wall_s stays uninstrumented; only the budget shares (which
                # are host- and overhead-insensitive ratios) are recorded.
                text, budget = _profile(fn, kwargs, max(profile_top, 1))
                measured[name]["profile_budget"] = budget
                if profile_top > 0:
                    echo(f"--- cProfile top {profile_top}: {name} ---")
                    echo(text)
                    echo(format_budget(name, budget))
        return measured
    from concurrent.futures import ProcessPoolExecutor
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks)),
                             mp_context=pool_context()) as pool:
        futures = [(name, pool.submit(_measure, fn, kwargs, repeats))
                   for name, fn, kwargs in tasks]
        for name, future in futures:
            measured[name] = future.result()
    return measured


# ---------------------------------------------------------------------------
# trajectory persistence (BENCH_perf.json)
# ---------------------------------------------------------------------------

def load_trajectory(path: Path = DEFAULT_RESULTS_PATH) -> Dict[str, Any]:
    if path.exists():
        return json.loads(path.read_text(encoding="utf-8"))
    return {"schema": 1, "entries": []}


def save_trajectory(trajectory: Dict[str, Any],
                    path: Path = DEFAULT_RESULTS_PATH) -> None:
    path.write_text(json.dumps(trajectory, indent=2) + "\n", encoding="utf-8")


def baseline_entry(trajectory: Dict[str, Any],
                   quick: bool) -> Optional[Dict[str, Any]]:
    """The oldest entry at the same scale: the pre-optimization baseline."""
    for entry in trajectory.get("entries", []):
        if entry.get("quick") == quick:
            return entry
    return None


def latest_entry(trajectory: Dict[str, Any],
                 quick: bool) -> Optional[Dict[str, Any]]:
    """The newest committed entry at the same scale."""
    for entry in reversed(trajectory.get("entries", [])):
        if entry.get("quick") == quick:
            return entry
    return None


def gate_reference(trajectory: Dict[str, Any], quick: bool, jobs: int = 1,
                   measured: Optional[Dict[str, Any]] = None
                   ) -> Optional[Dict[str, Any]]:
    """Per-scenario best (min wall_s) committed stats comparable to this run.

    The regression gate used to compare against the *last* committed entry,
    which meant one slow recorded run (a loaded CI host) permanently
    loosened the gate.  Instead, take the fastest committed wall time per
    scenario among comparable entries: same scale (``quick``), same
    cross-scenario job count, and — when ``measured`` is given — the same
    deterministic event count as the run being gated, so stale entries from
    an old scenario scale or a seed-overridden run never become (or poison)
    the reference.  A scenario with committed history but no event-count
    match falls back to its newest committed stats, which makes
    :func:`check_regression` fail loudly on the drift instead of reporting
    a missing reference.  Returns ``None`` when no comparable entry exists.
    """
    entries = [entry for entry in trajectory.get("entries", [])
               if entry.get("quick") == quick
               and entry.get("jobs", 1) == jobs]
    if not entries:
        return None
    best: Dict[str, Any] = {}
    newest: Dict[str, Any] = {}
    for entry in entries:
        for name, stats in entry.get("scenarios", {}).items():
            newest[name] = stats
            if measured is not None:
                run = measured.get(name)
                if run is None or stats.get("events") != run.get("events"):
                    continue
            if name not in best or stats["wall_s"] < best[name]["wall_s"]:
                best[name] = stats
    return {"label": "best committed per scenario",
            "scenarios": {name: best.get(name, stats)
                          for name, stats in newest.items()}}


def append_entry(trajectory: Dict[str, Any], label: str, quick: bool,
                 measured: Dict[str, Any], jobs: int = 1) -> Dict[str, Any]:
    entry = {
        "label": label,
        "quick": quick,
        "jobs": jobs,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "scenarios": measured,
    }
    trajectory.setdefault("entries", []).append(entry)
    return entry


def format_perf(measured: Dict[str, Any],
                baseline: Optional[Dict[str, Any]] = None) -> str:
    """Render the measurements (with speedups when a baseline exists)."""
    from repro.metrics.summary import format_table

    rows = []
    for name, stats in measured.items():
        speedup = "-"
        if baseline is not None:
            ref = baseline.get("scenarios", {}).get(name)
            if ref and stats["wall_s"] > 0:
                speedup = f"{ref['wall_s'] / stats['wall_s']:.2f}x"
        rows.append([name, stats["wall_s"], stats["events"],
                     stats["events_per_s"], stats["ops"], stats["ops_per_s"],
                     speedup])
    title = "Simulator core performance (wall-clock)"
    if baseline is not None:
        title += f" — speedup vs '{baseline.get('label', 'baseline')}'"
    return format_table(
        ["scenario", "wall (s)", "events", "events/s", "ops", "ops/s",
         "speedup"],
        rows, title=title)


def check_regression(measured: Dict[str, Any], committed: Dict[str, Any],
                     factor: float = REGRESSION_FACTOR,
                     echo: Callable[[str], None] = print) -> bool:
    """True when every scenario stays within ``factor`` of the committed entry.

    Fails loudly — never silently — when a measured scenario has no
    committed reference (a renamed/added scenario needs a re-recorded
    baseline) or when the deterministic event count diverges from the
    committed one (the scenario's scale changed, or determinism broke:
    either way the wall-clock comparison would be meaningless).
    """
    ok = True
    compared = 0
    for name, stats in measured.items():
        ref = committed.get("scenarios", {}).get(name)
        if ref is None:
            echo(f"perf-gate {name}: no committed reference for this "
                 f"scenario — record a new baseline entry ... FAIL")
            ok = False
            continue
        compared += 1
        if ref.get("events") is not None and stats["events"] != ref["events"]:
            echo(f"perf-gate {name}: event count {stats['events']} != "
                 f"committed {ref['events']} (scenario scale or determinism "
                 f"changed; re-record the baseline) ... FAIL")
            ok = False
            continue
        limit = ref["wall_s"] * factor
        verdict = "ok" if stats["wall_s"] <= limit else "REGRESSION"
        if stats["wall_s"] > limit:
            ok = False
        echo(f"perf-gate {name}: {stats['wall_s']:.3f}s vs committed "
             f"{ref['wall_s']:.3f}s (limit {limit:.3f}s) ... {verdict}")
    if compared == 0 and not measured:
        echo("perf-gate: nothing measured ... FAIL")
        ok = False
    return ok


#: Percentage points a subsystem's self-time share may grow versus the best
#: committed budget before ``--budget-drift`` fails.
BUDGET_DRIFT_POINTS = 10.0


def budget_reference(trajectory: Dict[str, Any], quick: bool, jobs: int = 1,
                     measured: Optional[Dict[str, Any]] = None
                     ) -> Dict[str, Any]:
    """Per-scenario committed profile budget to gate drift against.

    Among comparable committed entries (same scale, same job count,
    matching event count when ``measured`` is given) that recorded a
    ``profile_budget``, take the **latest** — unlike the wall gate, which
    keys off the fastest entry so a slow recorded run can never loosen
    it, the budget gate tracks the *intended* shape of the code, and an
    optimization PR legitimately redistributes shares: committing its
    re-recorded entry is how the new shape is ratified.  (Shares are
    host-insensitive, so "latest" costs nothing in stability; walls are
    not, which is why the wall gate keeps min-wall semantics.)  Scenarios
    with no committed budget are absent from the result (the drift check
    reports them as unarmed).
    """
    latest: Dict[str, Any] = {}
    for entry in trajectory.get("entries", []):
        if entry.get("quick") != quick or entry.get("jobs", 1) != jobs:
            continue
        for name, stats in entry.get("scenarios", {}).items():
            if stats.get("profile_budget") is None:
                continue
            if measured is not None:
                run = measured.get(name)
                if run is None or stats.get("events") != run.get("events"):
                    continue
            latest[name] = stats
    return {name: stats["profile_budget"] for name, stats in latest.items()}


def check_budget_drift(measured: Dict[str, Any],
                       references: Dict[str, Any],
                       max_points: float = BUDGET_DRIFT_POINTS,
                       echo: Callable[[str], None] = print) -> bool:
    """True when no subsystem's self-time share grew > ``max_points``.

    Compares each measured scenario's profiled per-subsystem shares (see
    :func:`budget_from_profiler`) against the committed reference budget.
    A share that *shrinks* never fails; growth beyond the allowance means
    one subsystem is quietly re-absorbing the wall time an optimization
    PR removed, even if total wall still passes the coarser gates.
    Scenarios measured without a budget (run without ``--profile``) or
    with no committed reference are reported but do not fail — the first
    recorded entry arms the gate for the next run.
    """
    ok = True
    for name, stats in measured.items():
        budget = stats.get("profile_budget")
        if budget is None:
            echo(f"budget-drift {name}: no profiled budget in this run "
                 f"(use --profile) ... SKIP")
            continue
        reference = references.get(name)
        if reference is None:
            echo(f"budget-drift {name}: no committed budget reference — "
                 f"this entry arms the gate ... SKIP")
            continue
        worst_bucket, worst = None, 0.0
        for bucket, share in budget["shares"].items():
            drift = (share - reference["shares"].get(bucket, 0.0)) * 100.0
            if drift > worst:
                worst_bucket, worst = bucket, drift
        verdict = "ok" if worst <= max_points else "DRIFT"
        if worst > max_points:
            ok = False
        detail = (f"worst {worst_bucket} +{worst:.1f} points"
                  if worst_bucket else "no subsystem grew")
        echo(f"budget-drift {name}: {detail} "
             f"(allowance {max_points:.0f}) ... {verdict}")
    return ok


def parse_floor_specs(specs: Optional[Sequence[str]]) -> Dict[str, float]:
    """Parse repeatable ``scenario=events_per_s`` floor specs."""
    floors: Dict[str, float] = {}
    for spec in specs or ():
        name, _, value = spec.partition("=")
        if not value:
            raise ValueError(
                f"bad floor spec {spec!r}; expected scenario=events_per_s")
        if name not in PERF_SCENARIOS:
            raise ValueError(f"unknown perf scenario in floor spec {spec!r}; "
                             f"choose from {list(PERF_SCENARIOS)}")
        floors[name] = float(value)
    return floors


def check_floors(measured: Dict[str, Any], floors: Dict[str, float],
                 echo: Callable[[str], None] = print) -> bool:
    """True when every floored scenario meets its absolute events/s floor.

    Unlike the relative regression gate (which only catches a >2x slide
    against committed history), the floor pins a hard minimum event rate so
    a sequence of small regressions can never silently erode the fast path.
    """
    ok = True
    for name, floor in floors.items():
        stats = measured.get(name)
        if stats is None:
            echo(f"perf-floor {name}: scenario not measured ... FAIL")
            ok = False
            continue
        rate = stats["events_per_s"]
        verdict = "ok" if rate >= floor else "TOO SLOW"
        if rate < floor:
            ok = False
        echo(f"perf-floor {name}: {rate:,.0f} events/s vs floor "
             f"{floor:,.0f} ... {verdict}")
    return ok


def main_perf(quick: bool = False, repeats: int = 3, profile_top: int = 0,
              label: Optional[str] = None,
              scenarios: Optional[Sequence[str]] = None,
              output: Optional[str] = None, save: bool = True,
              regression_gate: bool = False,
              events_floors: Optional[Sequence[str]] = None,
              budget_drift: bool = False, show_budget: bool = False,
              seed: Optional[int] = None, jobs: JobsSpec = 1) -> int:
    """Entry point behind ``python -m repro.bench perf``."""
    jobs = resolve_jobs(jobs)
    if budget_drift and profile_top <= 0:
        print("error: --budget-drift needs --profile N (the drift check "
              "compares profiled subsystem shares)", file=sys.stderr)
        return 2
    path = Path(output) if output else DEFAULT_RESULTS_PATH
    floors = parse_floor_specs(events_floors)
    trajectory = load_trajectory(path)
    measured = run_perf(scenarios=scenarios, quick=quick, repeats=repeats,
                        profile_top=profile_top, seed=seed, jobs=jobs,
                        collect_budget=show_budget)
    committed = gate_reference(trajectory, quick, jobs=jobs,
                               measured=measured)
    print(format_perf(measured, baseline=baseline_entry(trajectory, quick)))
    if show_budget:
        budget_refs = budget_reference(trajectory, quick, jobs=jobs,
                                       measured=measured)
        for name, stats in measured.items():
            fresh = stats.get("profile_budget")
            if fresh is not None:
                print(format_budget_comparison(name, fresh,
                                               budget_refs.get(name)))
    gate_ok = True
    if regression_gate:
        if committed is None:
            print(f"perf-gate: no committed entry at this scale in {path}; "
                  "record a baseline first ... FAIL")
            gate_ok = False
        else:
            gate_ok = check_regression(measured, committed)
    if floors and not check_floors(measured, floors):
        gate_ok = False
    if budget_drift and not check_budget_drift(
            measured, budget_reference(trajectory, quick, jobs=jobs,
                                       measured=measured)):
        gate_ok = False
    # Recording composes with the gate so CI can gate and upload the very
    # numbers it gated in one measurement pass.
    if save:
        append_entry(trajectory,
                     label or ("quick" if quick else "full"),
                     quick, measured, jobs=jobs)
        save_trajectory(trajectory, path)
        print(f"appended entry to {path}")
    return 0 if gate_ok else 1
