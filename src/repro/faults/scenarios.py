"""Library of named fault scenarios used by the fault benchmarks (Figure 13).

Each factory returns a :class:`~repro.faults.schedule.Scenario` whose targets
are symbolic selectors (``"replica:1"``, ``"leader"``, ``"region:<name>"``)
so one scenario applies to any deployment; bind it with
:func:`cassandra_aliases` / :func:`zookeeper_aliases` when constructing the
:class:`~repro.faults.injector.FaultInjector`.

The default timings assume the fault benchmark's 12 s runs: faults start
after the 3 s warm-up and heal before the cool-down, so the measurement
window observes injection, degraded operation, and recovery.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.faults.schedule import FaultScheduleBuilder, Scenario
from repro.sim.topology import Region


# -- alias builders ---------------------------------------------------------

def cassandra_aliases(cluster) -> Dict[str, str]:
    """Selector → node-name map for a :class:`CassandraCluster`.

    ``replica:<i>`` follows the cluster's replica order (FRK, IRL, VRG by
    default); ``coordinator`` is the first client's contact replica.
    """
    aliases = {f"replica:{i}": replica.name
               for i, replica in enumerate(cluster.replicas)}
    if cluster.clients:
        aliases["coordinator"] = cluster.clients[0].contact
    return aliases


def zookeeper_aliases(cluster) -> Dict[str, str]:
    """Selector → node-name map for a :class:`ZooKeeperCluster`."""
    aliases = {"leader": cluster.leader.name}
    for i, follower in enumerate(cluster.followers):
        aliases[f"follower:{i}"] = follower.name
    return aliases


# -- scenario factories ---------------------------------------------------------

def replica_crash(at_ms: float = 4_000.0, duration_ms: float = 4_000.0,
                  target: str = "replica:1") -> Scenario:
    """One storage replica crashes mid-run and later restarts.

    Quorum operations that counted on the crashed replica must retry toward
    the surviving ones (or downgrade); after recovery, read-repair converges
    the restarted replica's stale rows.
    """
    schedule = (FaultScheduleBuilder()
                .crash_window(target, at_ms, duration_ms)
                .build())
    return Scenario(
        name="replica-crash",
        description=(f"{target} crashes at {at_ms:.0f} ms and recovers "
                     f"{duration_ms:.0f} ms later"),
        schedule=schedule)


def wan_partition(at_ms: float = 4_000.0, duration_ms: float = 4_000.0,
                  region_a: str = Region.FRK,
                  region_b: str = Region.VRG) -> Scenario:
    """A WAN partition splits two regions, then heals.

    With the default FRK/IRL/VRG placement this cuts the FRK coordinator off
    from the VRG replica while leaving a majority (FRK + IRL) connected, so
    quorum-2 operations survive via retry and quorum-3 operations downgrade.
    """
    schedule = (FaultScheduleBuilder()
                .partition_window(f"region:{region_a}", f"region:{region_b}",
                                  at_ms, duration_ms)
                .build())
    return Scenario(
        name="wan-partition",
        description=(f"partition between {region_a} and {region_b} from "
                     f"{at_ms:.0f} ms for {duration_ms:.0f} ms"),
        schedule=schedule)


def flapping_link(at_ms: float = 3_000.0, down_ms: float = 800.0,
                  up_ms: float = 1_200.0, cycles: int = 3,
                  region_a: str = Region.FRK,
                  region_b: str = Region.VRG) -> Scenario:
    """A link repeatedly drops and recovers (route flapping)."""
    schedule = (FaultScheduleBuilder()
                .flapping(f"region:{region_a}", f"region:{region_b}",
                          at_ms, up_ms=up_ms, down_ms=down_ms, cycles=cycles)
                .build())
    return Scenario(
        name="flapping-link",
        description=(f"{region_a}↔{region_b} link flaps {cycles}× "
                     f"({down_ms:.0f} ms down / {up_ms:.0f} ms up) "
                     f"from {at_ms:.0f} ms"),
        schedule=schedule)


def slow_follower(at_ms: float = 3_000.0, duration_ms: float = 6_000.0,
                  factor: float = 20.0,
                  target: str = "replica:2") -> Scenario:
    """One replica keeps running but serves every request ``factor``× slower."""
    schedule = (FaultScheduleBuilder()
                .slow_window(target, at_ms, duration_ms, factor)
                .build())
    return Scenario(
        name="slow-follower",
        description=(f"{target} runs {factor:.0f}× slower from {at_ms:.0f} ms "
                     f"for {duration_ms:.0f} ms"),
        schedule=schedule)


def degraded_link(at_ms: float = 3_000.0, duration_ms: float = 6_000.0,
                  extra_ms: float = 120.0,
                  region_a: str = Region.FRK,
                  region_b: str = Region.VRG) -> Scenario:
    """A WAN link stays up but gains ``extra_ms`` of one-way latency."""
    schedule = (FaultScheduleBuilder()
                .degrade_window(f"region:{region_a}", f"region:{region_b}",
                                at_ms, duration_ms, extra_ms)
                .build())
    return Scenario(
        name="degraded-link",
        description=(f"{region_a}↔{region_b} gains {extra_ms:.0f} ms one-way "
                     f"latency from {at_ms:.0f} ms for {duration_ms:.0f} ms"),
        schedule=schedule)


def leader_crash(at_ms: float = 4_000.0,
                 duration_ms: float = 6_000.0) -> Scenario:
    """The ZooKeeper leader crashes; followers must detect and elect."""
    schedule = (FaultScheduleBuilder()
                .crash_window("leader", at_ms, duration_ms)
                .build())
    return Scenario(
        name="leader-crash",
        description=(f"ZooKeeper leader crashes at {at_ms:.0f} ms and "
                     f"restarts {duration_ms:.0f} ms later"),
        schedule=schedule)


def coordinator_crash_mid_commit(at_ms: float = 4_000.0,
                                 duration_ms: float = 5_000.0,
                                 target: str = "txn-coordinator:0") -> Scenario:
    """The active transaction coordinator crashes while commits are in flight.

    Transactions that were prepared (or partially committed) when the crash
    hits are left in doubt; a standby must detect the silence, take over
    with a higher epoch, read the participant logs, and drive every
    in-flight transaction to a consistent outcome — the invariants the
    fig16 cells assert (no partial commits, no lost acked commits) live or
    die on this window.
    """
    schedule = (FaultScheduleBuilder()
                .crash_window(target, at_ms, duration_ms)
                .build())
    return Scenario(
        name="coordinator-crash-mid-commit",
        description=(f"{target} crashes at {at_ms:.0f} ms mid-commit and "
                     f"restarts {duration_ms:.0f} ms later"),
        schedule=schedule)


def participant_crash_after_prepare(at_ms: float = 4_000.0,
                                    duration_ms: float = 3_000.0,
                                    target: str = "txn-participant:0") -> Scenario:
    """One transaction participant crashes between prepare and decision.

    Its prepared transactions block (the coordinator cannot presume abort
    while a silent participant might hold a commit record) and its locks
    survive in the log; on restart, decision redelivery resolves them.
    """
    schedule = (FaultScheduleBuilder()
                .crash_window(target, at_ms, duration_ms)
                .build())
    return Scenario(
        name="participant-crash-after-prepare",
        description=(f"{target} crashes at {at_ms:.0f} ms holding prepared "
                     f"transactions and restarts {duration_ms:.0f} ms later"),
        schedule=schedule)


#: Scenario name → zero-argument factory with benchmark-friendly defaults.
SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "replica-crash": replica_crash,
    "wan-partition": wan_partition,
    "flapping-link": flapping_link,
    "slow-follower": slow_follower,
    "degraded-link": degraded_link,
    "leader-crash": leader_crash,
    "coordinator-crash-mid-commit": coordinator_crash_mid_commit,
    "participant-crash-after-prepare": participant_crash_after_prepare,
}


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def get_scenario(name: str, **overrides) -> Scenario:
    """Build a named scenario, optionally overriding its timing parameters."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"choose from {scenario_names()}") from None
    return factory(**overrides)
