#!/usr/bin/env python
"""Table 1: which access pattern fits which application.

Prints the application taxonomy from the paper's Table 1 and demonstrates the
recommendation helper on a few concrete scenarios.

Run with::

    python examples/consistency_catalog.py
"""

from repro.apps.catalog import (
    APPLICATION_CATALOG,
    ConsistencyCategory,
    recommend_category,
    use_cases,
)
from repro.metrics.summary import format_table


def main() -> None:
    for category in ConsistencyCategory:
        rows = [[case.name, case.rationale] for case in use_cases(category)]
        print(format_table(["use case", "why"], rows,
                           title=f"\n== {category.value} =="))

    print("\nrecommendations:")
    scenarios = [
        ("thumbnail generator", False, True),
        ("configuration service", True, False),
        ("online ticket shop", True, True),
    ]
    for name, needs_correctness, fast_views_help in scenarios:
        category, reason = recommend_category(needs_correctness,
                                              fast_views_help)
        print(f"  {name:<22} -> {category.value:<38} ({reason})")

    total = len(APPLICATION_CATALOG)
    icg = len(use_cases(ConsistencyCategory.ICG))
    print(f"\n{icg} of the {total} catalogued use cases can exploit ICG.")


if __name__ == "__main__":
    main()
