"""Tests for operation descriptors and View objects."""

from repro.core.consistency import STRONG, WEAK
from repro.core.operations import Operation, custom, dequeue, enqueue, read, write
from repro.core.views import View


class TestOperations:
    def test_read_is_read(self):
        op = read("user1")
        assert op.name == "read"
        assert op.key == "user1"
        assert op.is_read

    def test_write_carries_value(self):
        op = write("user1", "value")
        assert not op.is_read
        assert op.args == ("value",)

    def test_enqueue_dequeue(self):
        e = enqueue("/q", "item")
        d = dequeue("/q")
        assert e.key == d.key == "/q"
        assert e.args == ("item",)
        assert not e.is_read and not d.is_read

    def test_custom_operation_kwargs(self):
        op = custom("scan", "table", 1, 2, is_read=True, limit=10, prefix="a")
        assert op.name == "scan"
        assert op.args == (1, 2)
        assert op.arguments() == {"limit": 10, "prefix": "a"}

    def test_describe(self):
        assert read("k").describe() == "read(k)"
        assert Operation(name="noop").describe() == "noop()"

    def test_operations_are_hashable_and_comparable(self):
        assert read("a") == read("a")
        assert read("a") != read("b")
        assert len({read("a"), read("a"), write("a", 1)}) == 2


class TestViews:
    def test_same_value(self):
        a = View("x", WEAK)
        b = View("x", STRONG)
        c = View("y", STRONG)
        assert a.same_value(b)
        assert not a.same_value(c)

    def test_defaults(self):
        view = View("x", WEAK)
        assert view.timestamp is None
        assert not view.is_confirmation
        assert view.metadata == {}

    def test_metadata_is_per_instance(self):
        a = View("x", WEAK)
        b = View("y", WEAK)
        a.metadata["k"] = 1
        assert b.metadata == {}
