"""The ticket-selling case study (Section 4.3, Listing 5, Figure 12).

Tickets live in a replicated queue (ZooKeeper).  A purchase dequeues one
ticket.  With ICG the retailer looks at the preliminary (locally simulated)
dequeue result: if plenty of tickets remain the purchase is confirmed
immediately from the preliminary view, because it does not matter *which*
ticket the customer gets; only when the stock drops below a threshold does
the retailer wait for the final, atomic result — avoiding overselling exactly
when contention over the last tickets makes it likely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.core.client import CorrectableClient
from repro.core.correctable import Correctable
from repro.core.operations import dequeue, enqueue

#: Default stock level below which retailers wait for the final (atomic) view.
DEFAULT_THRESHOLD = 20


@dataclass
class PurchaseOutcome:
    """The result of one purchase attempt."""

    ticket: Optional[Any]
    latency_ms: float
    used_preliminary: bool
    sold_out: bool
    #: Stock size the deciding view reported (remaining tickets).
    remaining: int = 0

    @property
    def succeeded(self) -> bool:
        return not self.sold_out and self.ticket is not None


class TicketSeller:
    """A retailer selling tickets from a shared, replicated stock."""

    def __init__(self, client: CorrectableClient, queue_path: str = "/tickets",
                 threshold: int = DEFAULT_THRESHOLD,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.client = client
        self.queue_path = queue_path
        self.threshold = threshold
        self._clock = clock if clock is not None else getattr(client.binding, "clock", None)
        self.purchases_attempted = 0
        self.purchases_from_preliminary = 0
        self.purchases_from_final = 0
        self.sold_out_responses = 0

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    # -- stocking ------------------------------------------------------------
    def stock_ticket(self, ticket: Any,
                     on_done: Optional[Callable[[Dict[str, Any]], None]] = None
                     ) -> Correctable:
        """Add one ticket to the stock (event-organizer side)."""
        correctable = self.client.invoke_strong(enqueue(self.queue_path, ticket))
        if on_done is not None:
            correctable.set_callbacks(
                on_final=lambda view: on_done({"result": view.value}),
                on_error=lambda exc: on_done({"error": exc}))
        return correctable

    # -- purchasing (Listing 5) --------------------------------------------------
    def purchase_ticket(self, on_done: Callable[[PurchaseOutcome], None],
                        use_icg: bool = True) -> Correctable:
        """Attempt to buy one ticket.

        With ``use_icg=False`` the retailer always waits for the final
        (atomic) dequeue result — the vanilla ZooKeeper baseline of
        Figure 12.
        """
        self.purchases_attempted += 1
        started = self._now()
        state = {"done": False}

        def _confirm(view_value: Dict[str, Any], used_preliminary: bool) -> None:
            if state["done"]:
                return
            state["done"] = True
            remaining = int(view_value.get("remaining", 0)) if view_value else 0
            ticket = view_value.get("item") if view_value else None
            sold_out = ticket is None
            if sold_out:
                self.sold_out_responses += 1
            elif used_preliminary:
                self.purchases_from_preliminary += 1
            else:
                self.purchases_from_final += 1
            on_done(PurchaseOutcome(ticket=ticket,
                                    latency_ms=self._now() - started,
                                    used_preliminary=used_preliminary,
                                    sold_out=sold_out,
                                    remaining=remaining))

        if not use_icg:
            correctable = self.client.invoke_strong(dequeue(self.queue_path))
            correctable.set_callbacks(
                on_final=lambda view: _confirm(view.value, used_preliminary=False),
                on_error=lambda exc: _confirm(None, used_preliminary=False))
            return correctable

        correctable = self.client.invoke(dequeue(self.queue_path))

        def _on_update(view) -> None:
            result = view.value or {}
            # Plenty of stock left: it is safe to confirm from the weak view,
            # the background dequeue will pick *some* ticket for us.
            if result.get("item") is not None \
                    and result.get("remaining", 0) > self.threshold:
                _confirm(result, used_preliminary=True)

        def _on_final(view) -> None:
            _confirm(view.value, used_preliminary=False)

        correctable.set_callbacks(
            on_update=_on_update, on_final=_on_final,
            on_error=lambda exc: _confirm(None, used_preliminary=False))
        return correctable
