"""YCSB core workloads A, B and C.

A workload is an operation mix (read vs update proportions) plus a request
distribution.  :class:`OperationGenerator` turns a workload specification and
a dataset into an endless stream of ``("read" | "update", key, value)``
operations, which the closed-loop runner feeds to the system under test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.sim.rand import derive_rng
from repro.workloads import fastrand
from repro.workloads.distributions import make_key_chooser
from repro.workloads.records import Dataset

#: Per-draw operations before a generator auto-engages chunked prefill.
#: Short-lived generators (open-loop sessions issue tens of ops) never pay
#: the stream-setup cost; closed-loop threads cross this within the warmup.
_AUTO_CHUNK_AFTER = 192
#: Prefill chunks ramp between these bounds as a generator keeps drawing.
_CHUNK_MIN = 256
_CHUNK_MAX = 4096


@dataclass(frozen=True)
class WorkloadSpec:
    """An operation mix in the style of the YCSB core workloads."""

    name: str
    read_proportion: float
    update_proportion: float
    request_distribution: str = "zipfian"
    #: Zipf skew parameter for the zipfian-family distributions.  ``None``
    #: keeps the YCSB default (0.99); larger values concentrate traffic on
    #: fewer keys — the hot-partition regimes of the rebalance experiments.
    zipf_theta: Optional[float] = None

    def __post_init__(self) -> None:
        total = self.read_proportion + self.update_proportion
        if abs(total - 1.0) > 1e-9:
            raise ValueError(
                f"proportions must sum to 1.0, got {total} for {self.name}")
        if self.zipf_theta is not None and (
                not 0.0 < self.zipf_theta < 2.0 or self.zipf_theta == 1.0):
            # theta = 1 makes the Gray et al. generator's alpha diverge.
            raise ValueError(
                f"zipf_theta must be in (0, 2) excluding 1, "
                f"got {self.zipf_theta}")

    def with_distribution(self, distribution: str) -> "WorkloadSpec":
        """The same mix under a different request distribution."""
        return WorkloadSpec(name=self.name,
                            read_proportion=self.read_proportion,
                            update_proportion=self.update_proportion,
                            request_distribution=distribution,
                            zipf_theta=self.zipf_theta)

    def with_skew(self, theta: Optional[float]) -> "WorkloadSpec":
        """The same mix with a different Zipf skew (``None`` = YCSB 0.99)."""
        return WorkloadSpec(name=self.name,
                            read_proportion=self.read_proportion,
                            update_proportion=self.update_proportion,
                            request_distribution=self.request_distribution,
                            zipf_theta=theta)


#: Workload A — update heavy (50:50 read/update), e.g. a session store.
WORKLOAD_A = WorkloadSpec("A", read_proportion=0.5, update_proportion=0.5)
#: Workload B — read mostly (95:5), e.g. photo tagging.
WORKLOAD_B = WorkloadSpec("B", read_proportion=0.95, update_proportion=0.05)
#: Workload C — read only, e.g. a user-profile cache.
WORKLOAD_C = WorkloadSpec("C", read_proportion=1.0, update_proportion=0.0)


def workload_by_name(name: str) -> WorkloadSpec:
    """Look up one of the core workloads by its letter."""
    mapping = {"A": WORKLOAD_A, "B": WORKLOAD_B, "C": WORKLOAD_C}
    try:
        return mapping[name.upper()]
    except KeyError:
        raise KeyError(f"unknown YCSB workload: {name!r}") from None


class OperationGenerator:
    """Draws operations according to a workload spec over a dataset.

    Two random streams drive a generator: the *key* stream (which record)
    and the *mix* stream (read or update).  Constructed with a single
    ``rng``, both decisions share that one instance — the historical
    behaviour the committed figure tables were produced with, kept for
    byte-compatibility.  The sharing couples the streams: changing the
    read proportion shifts which keys get chosen.  :meth:`seeded` instead
    derives two independent, label-keyed streams (the ``derive_point_rng``
    convention), so key choice survives mix changes unchanged; new
    harnesses (the open-loop experiments) use it.
    """

    def __init__(self, spec: WorkloadSpec, dataset: Dataset,
                 rng: Optional[random.Random] = None, *,
                 key_rng: Optional[random.Random] = None,
                 mix_rng: Optional[random.Random] = None) -> None:
        if rng is None and (key_rng is None or mix_rng is None):
            raise ValueError("pass either a shared rng or both key_rng "
                             "and mix_rng")
        self.spec = spec
        self.dataset = dataset
        self._rng = mix_rng if mix_rng is not None else rng
        self._key_rng = key_rng if key_rng is not None else rng
        self._chooser = make_key_chooser(
            spec.request_distribution, dataset.record_count,
            self._key_rng, theta=spec.zipf_theta)
        self.reads_generated = 0
        self.updates_generated = 0
        # Chunked prefill state: ops are packed as (index << 1) | is_update.
        self._buf: list = []
        self._buf_pos = 0
        self._chunk = _CHUNK_MIN
        self._plain_draws = 0
        #: None = undecided, False = per-draw only, else (key, mix) streams.
        self._streams = None
        self._keys: Optional[list] = None

    @classmethod
    def seeded(cls, spec: WorkloadSpec, dataset: Dataset, seed: int,
               label: str) -> "OperationGenerator":
        """A generator whose key and mix streams are independently seeded.

        Streams are derived as ``{label}:keys`` and ``{label}:mix`` from the
        experiment seed, so each is reproducible on its own and neither
        perturbs the other (nor any other consumer of the same seed).
        """
        return cls(spec, dataset,
                   key_rng=derive_rng(seed, f"{label}:keys"),
                   mix_rng=derive_rng(seed, f"{label}:mix"))

    def next_operation(self) -> Tuple[str, str, Optional[str]]:
        """Return ``(op_type, key, value)``; value is None for reads.

        Draws pop from a chunked buffer precomputed through the
        :mod:`repro.workloads.fastrand` determinism seam whenever the
        chooser supports it — the op stream (types, keys, values, counters)
        is bit-identical to the per-draw path, only amortized.  Values are
        resolved at pop time so the dataset's shared value stream keeps its
        global order across generators.
        """
        pos = self._buf_pos
        buf = self._buf
        if pos < len(buf):
            packed = buf[pos]
            self._buf_pos = pos + 1
            index = packed >> 1
            keys = self._keys
            key = keys[index] if keys is not None else self.dataset.key(index)
            if packed & 1:
                self.updates_generated += 1
                return "update", key, self.dataset.random_value()
            self.reads_generated += 1
            return "read", key, None
        streams = self._streams
        if streams is None and self._plain_draws >= _AUTO_CHUNK_AFTER:
            streams = self._setup_streams()
        if streams:
            self._buf = buf = self._generate(self._chunk)
            if self._chunk < _CHUNK_MAX:
                self._chunk *= 2
            # Pop the first op of the fresh chunk in place rather than
            # recursing: the refill happens once per chunk, but the frame
            # would sit on the hot path's deepest stack.
            packed = buf[0]
            self._buf_pos = 1
            index = packed >> 1
            keys = self._keys
            key = keys[index] if keys is not None else self.dataset.key(index)
            if packed & 1:
                self.updates_generated += 1
                return "update", key, self.dataset.random_value()
            self.reads_generated += 1
            return "read", key, None
        self._plain_draws += 1
        index = self._chooser.next_index()
        key = self.dataset.key(index)
        if self._rng.random() < self.spec.read_proportion:
            self.reads_generated += 1
            return "read", key, None
        self.updates_generated += 1
        self._chooser.notify_insert(index)
        return "update", key, self.dataset.random_value()

    def prefill(self, n: int) -> int:
        """Precompute the next ``n`` operations into the chunk buffer.

        Returns how many operations are buffered afterwards; 0 means the
        chooser cannot be vectorized (stateful distribution or an overridden
        rng) and draws stay per-op — still bit-identical, just not batched.
        """
        if self._streams is None:
            self._setup_streams()
        if not self._streams:
            return 0
        if self._buf_pos:
            self._buf = self._buf[self._buf_pos:]
            self._buf_pos = 0
        need = n - len(self._buf)
        if need > 0:
            self._buf.extend(self._generate(need))
        return len(self._buf)

    def _setup_streams(self):
        """Decide (once) whether draws can flow through chunked streams."""
        chooser = self._chooser
        kind = getattr(chooser, "vector_kind", None)
        shared = self._key_rng is self._rng
        if kind is None or (shared and kind != "doubles"):
            # Stateful chooser, or a shared rng whose key draws consume a
            # data-dependent number of MT words (interleaving with the mix
            # draws can then not be precomputed).
            self._streams = False
            return False
        if shared:
            stream = fastrand.make_stream(self._rng)
            self._streams = (stream, stream)
        else:
            self._streams = (fastrand.make_stream(self._key_rng),
                             fastrand.make_stream(self._rng))
        self._keys = self.dataset.cached_keys()
        return self._streams

    def _generate(self, n: int) -> list:
        """``n`` packed ops, consuming the streams exactly like per-draw."""
        key_stream, mix_stream = self._streams
        chooser = self._chooser
        read_proportion = self.spec.read_proportion
        if key_stream is mix_stream:
            # Shared rng: per op the historical path draws one double for
            # the key, then one for the mix — deinterleave a single block.
            block = key_stream.doubles(2 * n)
            indexes = chooser.indices_from_doubles(block[0::2])
            mix = block[1::2]
        else:
            if chooser.vector_kind == "doubles":
                indexes = chooser.indices_from_doubles(key_stream.doubles(n))
            else:
                indexes = chooser.indices_from_stream(key_stream, n)
            mix = mix_stream.doubles(n)
        if read_proportion >= 1.0:
            # Read-only mix (workload C): every double is < 1.0, so the
            # update bit is always clear — the mix draws above are still
            # consumed, keeping the streams bit-identical to the mixed path.
            return [index << 1 for index in indexes]
        return [(index << 1) | (u >= read_proportion)
                for index, u in zip(indexes, mix)]

    def sync_streams(self) -> None:
        """Write stream state back into the source rngs (tests/debug)."""
        if self._streams:
            key_stream, mix_stream = self._streams
            key_stream.sync()
            if mix_stream is not key_stream:
                mix_stream.sync()
