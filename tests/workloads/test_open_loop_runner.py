"""Tests for the open-loop runner: arrivals, admission control, accounting."""

import pytest

from repro.sim.rand import derive_rng
from repro.sim.scheduler import Scheduler
from repro.workloads.arrivals import PoissonArrivals, UniformArrivals
from repro.workloads.records import Dataset
from repro.workloads.runner import ClosedLoopRunner, OpenLoopRunner
from repro.workloads.ycsb import WORKLOAD_A, WORKLOAD_C, OperationGenerator


class _FixedLatencyIssue:
    """Completes every operation after a fixed simulated delay."""

    def __init__(self, scheduler, latency_ms=10.0):
        self.scheduler = scheduler
        self.latency_ms = latency_ms
        self.issued = 0
        self.in_flight = 0
        self.max_in_flight_seen = 0

    def __call__(self, op_type, key, value, done):
        self.issued += 1
        self.in_flight += 1
        self.max_in_flight_seen = max(self.max_in_flight_seen, self.in_flight)

        def _complete():
            self.in_flight -= 1
            done({"final_latency_ms": self.latency_ms,
                  "preliminary_latency_ms": self.latency_ms / 2,
                  "diverged": False})

        self.scheduler.schedule(self.latency_ms, _complete)


def _make_runner(scheduler, issue, *, rate=200.0, sessions=10,
                 duration=2_000.0, warmup=400.0, cooldown=200.0,
                 max_in_flight=None, policy="queue", queue_limit=None,
                 arrivals=None, seed=42, faults=None):
    dataset = Dataset(record_count=20)
    if arrivals is None:
        arrivals = UniformArrivals(rate)
    return OpenLoopRunner(
        scheduler=scheduler, issue=issue,
        make_generator=lambda i: OperationGenerator.seeded(
            WORKLOAD_C, dataset, seed, f"open-{i}"),
        arrivals=arrivals, sessions=sessions,
        duration_ms=duration, warmup_ms=warmup, cooldown_ms=cooldown,
        label="open-test", max_in_flight=max_in_flight, policy=policy,
        queue_limit=queue_limit, faults=faults)


class TestOpenLoopBasics:
    def test_unbounded_throughput_tracks_offered_rate(self):
        scheduler = Scheduler()
        issue = _FixedLatencyIssue(scheduler, latency_ms=10.0)
        runner = _make_runner(scheduler, issue, rate=200.0)
        result = runner.run()
        # 200 ops/s offered, 10 ms service, no admission bound: everything
        # completes at its service latency.
        assert result.throughput_ops_per_sec() == pytest.approx(200, rel=0.05)
        assert result.offered_ops_per_sec() == pytest.approx(200, rel=0.05)
        assert result.final_latency.mean() == pytest.approx(10.0)
        assert result.admission.shed == 0
        assert result.admission.queue_delay.maximum() == 0.0

    def test_issue_rate_independent_of_service_time(self):
        # The defining open-loop property: slowing the store does not slow
        # the arrivals (a closed loop would issue fewer operations).
        totals = {}
        for latency in (5.0, 50.0):
            scheduler = Scheduler()
            issue = _FixedLatencyIssue(scheduler, latency_ms=latency)
            runner = _make_runner(scheduler, issue, rate=100.0)
            runner.run()
            totals[latency] = issue.issued
        assert totals[5.0] == totals[50.0]

    def test_arrivals_stop_at_end_time(self):
        scheduler = Scheduler()
        issue = _FixedLatencyIssue(scheduler)
        runner = _make_runner(scheduler, issue, rate=100.0, duration=1_000.0,
                              warmup=200.0, cooldown=100.0)
        runner.run()
        assert issue.issued <= 100  # 1 s at 100 ops/s
        assert scheduler.now() >= runner.end_time

    def test_warmup_and_cooldown_excluded(self):
        scheduler = Scheduler()
        issue = _FixedLatencyIssue(scheduler)
        runner = _make_runner(scheduler, issue)
        result = runner.run()
        assert 0 < result.measured_ops < result.total_ops
        assert result.admission.measured_offered < result.admission.offered

    def test_sessions_round_robin(self):
        scheduler = Scheduler()
        issue = _FixedLatencyIssue(scheduler)
        runner = _make_runner(scheduler, issue, sessions=4, rate=100.0)
        runner.run()
        counts = [s.generator.reads_generated for s in runner._sessions]
        assert max(counts) - min(counts) <= 1

    def test_validation(self):
        scheduler = Scheduler()
        issue = _FixedLatencyIssue(scheduler)
        with pytest.raises(ValueError):
            _make_runner(scheduler, issue, sessions=0)
        with pytest.raises(ValueError):
            _make_runner(scheduler, issue, policy="reject")
        with pytest.raises(ValueError):
            _make_runner(scheduler, issue, max_in_flight=0)
        with pytest.raises(ValueError):
            _make_runner(scheduler, issue, queue_limit=-1)


class TestAdmissionControl:
    def test_in_flight_never_exceeds_bound(self):
        scheduler = Scheduler()
        issue = _FixedLatencyIssue(scheduler, latency_ms=50.0)
        runner = _make_runner(scheduler, issue, rate=400.0, max_in_flight=4)
        result = runner.run()
        assert issue.max_in_flight_seen <= 4
        assert result.admission.in_flight_high_water <= 4

    def test_queue_policy_adds_queue_delay_to_latency(self):
        scheduler = Scheduler()
        issue = _FixedLatencyIssue(scheduler, latency_ms=50.0)
        # Offered 400 ops/s, capacity 4/50ms = 80 ops/s: heavy queueing.
        runner = _make_runner(scheduler, issue, rate=400.0, max_in_flight=4,
                              policy="queue", queue_limit=16)
        result = runner.run()
        admission = result.admission
        assert admission.queue_delay.mean() > 0
        assert admission.queue_high_water > 0
        assert admission.queue_high_water <= 16
        # Response time = service latency + queue delay, never less than
        # the pure service time.
        assert result.final_latency.minimum() >= 50.0
        assert result.final_latency.mean() > 50.0
        # The bounded queue overflows at this overload: the excess is shed.
        assert admission.shed > 0

    def test_shed_policy_drops_instead_of_queueing(self):
        scheduler = Scheduler()
        issue = _FixedLatencyIssue(scheduler, latency_ms=50.0)
        runner = _make_runner(scheduler, issue, rate=400.0, max_in_flight=4,
                              policy="shed")
        result = runner.run()
        admission = result.admission
        assert admission.shed > 0
        assert admission.queue_high_water == 0
        # Admitted operations never wait: latency stays at the service time.
        assert result.final_latency.mean() == pytest.approx(50.0)
        assert admission.queue_delay.maximum() == 0.0
        # Goodput saturates at capacity (80 ops/s) despite 400 offered.
        assert result.throughput_ops_per_sec() == pytest.approx(80, rel=0.1)

    def test_shed_percent_accounting(self):
        scheduler = Scheduler()
        issue = _FixedLatencyIssue(scheduler, latency_ms=50.0)
        runner = _make_runner(scheduler, issue, rate=400.0, max_in_flight=4,
                              policy="shed")
        result = runner.run()
        admission = result.admission
        assert admission.offered == admission.admitted + admission.shed
        assert 0.0 < admission.shed_percent() < 100.0
        summary = result.summary()
        assert summary["shed_pct"] == pytest.approx(admission.shed_percent())
        assert summary["offered_ops_s"] > summary["throughput_ops_s"]

    def test_queued_work_drains_after_end(self):
        scheduler = Scheduler()
        issue = _FixedLatencyIssue(scheduler, latency_ms=50.0)
        runner = _make_runner(scheduler, issue, rate=200.0, max_in_flight=2,
                              policy="queue", queue_limit=None)
        runner.run()
        # Every queued arrival is eventually issued (no bound on the queue,
        # and the drain slack lets the backlog empty).
        assert runner._waiting == type(runner._waiting)()
        assert issue.in_flight == 0


class TestFaultComposition:
    def test_fault_hook_armed_relative_to_start(self):
        armed = []

        class _Faults:
            def arm(self, offset_ms):
                armed.append(offset_ms)

        scheduler = Scheduler()
        scheduler.schedule(123.0, lambda: None)
        scheduler.run()
        issue = _FixedLatencyIssue(scheduler)
        runner = _make_runner(scheduler, issue, faults=_Faults())
        runner.run()
        assert armed == [123.0]


class TestDeterminism:
    def _result_fingerprint(self, *, policy="queue", seed=42):
        scheduler = Scheduler()
        issue = _FixedLatencyIssue(scheduler, latency_ms=25.0)
        dataset = Dataset(record_count=20)
        runner = OpenLoopRunner(
            scheduler=scheduler, issue=issue,
            make_generator=lambda i: OperationGenerator.seeded(
                WORKLOAD_A, dataset, seed, f"det-{i}"),
            arrivals=PoissonArrivals(300.0, derive_rng(seed, "det:arrivals")),
            sessions=8, duration_ms=2_000.0, warmup_ms=400.0,
            cooldown_ms=200.0, label="det", max_in_flight=4, policy=policy,
            queue_limit=8)
        result = runner.run()
        return (result.total_ops, result.measured_ops,
                result.admission.offered, result.admission.shed,
                result.final_latency.mean(),
                result.admission.queue_delay.mean())

    def test_same_seed_same_run(self):
        assert self._result_fingerprint() == self._result_fingerprint()

    def test_policies_share_the_arrival_trace(self):
        # Same seed, different policy: identical offered arrivals, only the
        # admission outcome differs.
        queue = self._result_fingerprint(policy="queue")
        shed = self._result_fingerprint(policy="shed")
        assert queue[2] == shed[2]

    def test_closed_loop_still_runs_on_shared_engine(self):
        # Regression guard for the LoadEngine refactor: the closed-loop
        # runner on the shared base matches its historical behaviour.
        scheduler = Scheduler()
        issue = _FixedLatencyIssue(scheduler, latency_ms=10.0)
        dataset = Dataset(record_count=10)
        runner = ClosedLoopRunner(
            scheduler=scheduler, issue=issue,
            make_generator=lambda i: OperationGenerator.seeded(
                WORKLOAD_C, dataset, 42, f"closed-{i}"),
            threads=2, duration_ms=1_000.0, warmup_ms=200.0,
            cooldown_ms=100.0, label="closed")
        result = runner.run()
        assert result.throughput_ops_per_sec() == pytest.approx(200, rel=0.1)
        assert result.admission is None
        assert "shed_pct" not in result.summary()
