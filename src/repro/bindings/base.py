"""The binding API (Section 5.1).

A binding exposes exactly two methods to the library:

* :meth:`Binding.consistency_levels` — the levels the underlying stack
  offers, ordered weakest to strongest;
* :meth:`Binding.submit_operation` — execute an operation and invoke the
  callback once per requested level as results become available.

The callback signature is ``callback(level, value, metadata=None, error=None)``:

* ``level`` — the :class:`~repro.core.consistency.ConsistencyLevel` this
  result satisfies;
* ``value`` — the operation result at that level;
* ``metadata`` — optional dict (answering replica, quorum size, bytes on the
  wire, ``is_confirmation`` for the ``*CC`` optimization, ...);
* ``error`` — an exception if the operation failed at that level; when set,
  ``value`` is ignored.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable, List, Optional

from repro.core.consistency import (
    ConsistencyLevel,
    sort_levels,
    validate_levels,
)
from repro.core.errors import BindingError, UnsupportedOperationError
from repro.core.operations import Operation

#: ``callback(level, value, metadata=None, error=None)``
CallbackType = Callable[..., None]


class Binding(abc.ABC):
    """Abstract base class every storage binding implements."""

    #: Optional callable returning the current time (simulated or wall-clock);
    #: the client uses it to timestamp views.
    clock: Optional[Callable[[], float]] = None

    @abc.abstractmethod
    def consistency_levels(self) -> List[ConsistencyLevel]:
        """The levels this binding offers, ordered weakest to strongest."""

    @abc.abstractmethod
    def submit_operation(self, operation: Operation,
                         levels: List[ConsistencyLevel],
                         callback: CallbackType) -> None:
        """Execute ``operation``, invoking ``callback`` once per level in ``levels``."""

    def supports(self, level: ConsistencyLevel) -> bool:
        """Whether this binding offers ``level``."""
        return level in self.consistency_levels()

    # -- lean op pipeline (optional) -----------------------------------------
    # A binding may implement the ``protocol.lean_ops`` fast path: the client
    # then completes operations through a pooled
    # :class:`repro.core.correctable.LeanCorrectable` instead of the
    # callback/metadata pipeline.  Both hooks are re-checked per operation,
    # so a mid-run kill-switch flip falls back to ``submit_operation``.

    def lean_ok(self) -> bool:
        """Whether operations submitted *now* may take the lean pipeline."""
        return False

    def submit_lean(self, operation: Operation,
                    levels: List[ConsistencyLevel], lean) -> bool:
        """Issue ``operation`` completing into the ``lean`` sink.

        Returns False when this particular operation/level combination has
        no lean mapping (the caller then routes it through
        :meth:`submit_operation`); must have no side effects in that case.
        """
        return False

    # -- shared level/operation validation ----------------------------------
    # Every concrete binding used to hand-roll these checks; they live here
    # so the error type and message are uniform across bindings.

    def strongest_level(self) -> ConsistencyLevel:
        """The strongest level this binding offers."""
        levels = self.consistency_levels()
        if not levels:
            raise BindingError("binding advertises no consistency levels")
        return sort_levels(levels)[-1]

    def validate_levels(self, requested: Iterable[ConsistencyLevel]
                        ) -> List[ConsistencyLevel]:
        """``requested`` sorted weakest-first, checked against the binding.

        Raises ``UnsupportedConsistencyError`` when ``requested`` is empty
        or asks for a level the binding does not advertise, and
        ``BindingError`` when the binding advertises nothing at all (see
        :func:`repro.core.consistency.validate_levels`).
        """
        return validate_levels(requested, self.consistency_levels())

    def reject_unsupported(self, operation: Operation,
                           levels: List[ConsistencyLevel],
                           callback: CallbackType) -> None:
        """Report an unsupported operation kind through ``callback``.

        Delivers one :class:`UnsupportedOperationError` at the strongest
        requested level (the level that would have closed the Correctable),
        so the caller's error path fires exactly once.
        """
        strongest = sort_levels(levels)[-1] if levels else self.strongest_level()
        callback(strongest, None,
                 error=self.unsupported_operation(operation))

    def unsupported_operation(self, operation: Operation
                              ) -> UnsupportedOperationError:
        """The uniform error for an operation kind this binding lacks."""
        return UnsupportedOperationError(type(self).__name__, operation.name)
