"""Shape tests for the load-based harnesses (Figures 6, 7, 8, 11) at small scale."""

import pytest

from repro.bench.fig06_load import format_fig06, run_fig06
from repro.bench.fig07_divergence import format_fig07, run_fig07
from repro.bench.fig08_bandwidth import format_fig08, run_fig08
from repro.bench.fig11_apps import format_fig11, run_fig11

_QUICK = dict(duration_ms=3_500.0, warmup_ms=1_000.0, cooldown_ms=500.0)


class TestFig06Shape:
    @pytest.fixture(scope="class")
    def records(self):
        return run_fig06(workloads=("A",), systems=("C1", "C2", "CC2"),
                         thread_counts=(3,), record_count=200, seed=11,
                         **_QUICK)

    def _by_system(self, records):
        return {r["system"]: r for r in records}

    def test_cc2_preliminary_tracks_c1_latency(self, records):
        by_system = self._by_system(records)
        assert by_system["CC2"]["preliminary_mean_ms"] == pytest.approx(
            by_system["C1"]["final_mean_ms"], rel=0.35)

    def test_cc2_final_tracks_c2_latency(self, records):
        by_system = self._by_system(records)
        assert by_system["CC2"]["final_mean_ms"] == pytest.approx(
            by_system["C2"]["final_mean_ms"], rel=0.35)

    def test_c1_is_faster_than_c2(self, records):
        by_system = self._by_system(records)
        assert by_system["C1"]["final_mean_ms"] < \
            by_system["C2"]["final_mean_ms"]

    def test_cc2_throughput_not_higher_than_c2(self, records):
        by_system = self._by_system(records)
        assert by_system["CC2"]["throughput_ops_s"] <= \
            by_system["C2"]["throughput_ops_s"] * 1.05

    def test_report_renders(self, records):
        assert "throughput" in format_fig06(records)


class TestFig07Shape:
    @pytest.fixture(scope="class")
    def records(self):
        return run_fig07(configs=(("A", "latest"), ("B", "latest")),
                         thread_counts=(8,), record_count=500, seed=11,
                         **_QUICK)

    def test_update_heavy_workload_diverges_more(self, records):
        by_workload = {r["workload"]: r for r in records}
        assert by_workload["A"]["divergence_pct"] > \
            by_workload["B"]["divergence_pct"]

    def test_divergence_is_nonzero_but_bounded(self, records):
        by_workload = {r["workload"]: r for r in records}
        assert 0 < by_workload["A"]["divergence_pct"] < 60

    def test_reads_were_compared(self, records):
        for record in records:
            assert record["compared_reads"] > 50

    def test_report_renders(self, records):
        assert "divergence" in format_fig07(records)


class TestFig08Shape:
    @pytest.fixture(scope="class")
    def records(self):
        return run_fig08(configs=(("A", "latest"),), threads=6,
                         record_count=500, seed=11, **_QUICK)

    def test_bandwidth_ordering_c1_starcc2_cc2(self, records):
        by_system = {r["system"]: r for r in records}
        assert by_system["C1"]["kb_per_op"] < \
            by_system["*CC2"]["kb_per_op"] < \
            by_system["CC2"]["kb_per_op"]

    def test_confirmation_optimization_cuts_overhead(self, records):
        by_system = {r["system"]: r for r in records}
        assert by_system["*CC2"]["overhead_vs_c1_pct"] < \
            by_system["CC2"]["overhead_vs_c1_pct"]

    def test_report_renders(self, records):
        assert "kB/op" in format_fig08(records)


class TestFig11Shape:
    @pytest.fixture(scope="class")
    def records(self):
        return run_fig11(apps=("ads",), systems=("C2", "CC2"),
                         workloads=("B",), thread_counts=(2,),
                         profile_count=80, ref_count=160, seed=11,
                         duration_ms=3_000.0, warmup_ms=800.0,
                         cooldown_ms=400.0)

    def test_speculation_reduces_read_latency(self, records):
        by_system = {r["system"]: r for r in records}
        assert by_system["CC2"]["read_latency_mean_ms"] < \
            by_system["C2"]["read_latency_mean_ms"]

    def test_misspeculation_is_rare(self, records):
        for record in records:
            assert record["misspeculation_pct"] < 5.0

    def test_report_renders(self, records):
        assert "misspeculation" in format_fig11(records)
