"""Tests for the figure-regeneration command line."""

import pytest

from repro.bench.cli import build_parser, figure_names, main, run_figure


class TestParser:
    def test_accepts_every_figure(self):
        parser = build_parser()
        for name in figure_names():
            args = parser.parse_args([name, "--quick"])
            assert args.figure == name and args.quick

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_seed_parsed(self):
        args = build_parser().parse_args(["fig12", "--seed", "7"])
        assert args.seed == 7

    def test_perf_options_parsed(self):
        args = build_parser().parse_args(
            ["perf", "--quick", "--profile", "10", "--repeats", "2",
             "--label", "x", "--perf-scenario", "fig09-zk-queue",
             "--no-save", "--check-regression"])
        assert args.figure == "perf" and args.quick
        assert args.profile == 10 and args.repeats == 2
        assert args.label == "x"
        assert args.perf_scenarios == ["fig09-zk-queue"]
        assert args.no_save and args.check_regression


class TestRunFigure:
    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_figure("fig99")

    def test_quick_fig09_produces_report(self):
        report = run_figure("fig09", quick=True)
        assert "Figure 9" in report
        assert "leader" in report

    def test_quick_fig12_with_seed(self):
        report = run_figure("fig12", quick=True, seed=9)
        assert "Figure 12" in report

    def test_main_prints_report(self, capsys):
        assert main(["fig09", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
