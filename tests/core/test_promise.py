"""Tests for the Promise primitive."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import InvalidStateError, OperationError
from repro.core.promise import Promise, PromiseState


class TestLifecycle:
    def test_starts_blocked(self):
        promise = Promise()
        assert promise.state is PromiseState.BLOCKED
        assert not promise.is_done()

    def test_resolve_sets_value(self):
        promise = Promise()
        promise.resolve(42)
        assert promise.is_ready()
        assert promise.value == 42

    def test_reject_sets_error(self):
        promise = Promise()
        error = OperationError("nope")
        promise.reject(error)
        assert promise.is_failed()
        assert promise.error is error

    def test_value_on_blocked_raises(self):
        with pytest.raises(InvalidStateError):
            Promise().value

    def test_value_on_failed_reraises(self):
        promise = Promise()
        promise.reject(OperationError("boom"))
        with pytest.raises(OperationError):
            promise.value

    def test_double_resolve_rejected(self):
        promise = Promise()
        promise.resolve(1)
        with pytest.raises(InvalidStateError):
            promise.resolve(2)

    def test_resolve_after_reject_rejected(self):
        promise = Promise()
        promise.reject(OperationError("x"))
        with pytest.raises(InvalidStateError):
            promise.resolve(1)


class TestCallbacks:
    def test_on_ready_after_resolve_fires_immediately(self):
        promise = Promise.resolved("hello")
        seen = []
        promise.on_ready(seen.append)
        assert seen == ["hello"]

    def test_on_ready_before_resolve_fires_on_resolve(self):
        promise = Promise()
        seen = []
        promise.on_ready(seen.append)
        assert seen == []
        promise.resolve("x")
        assert seen == ["x"]

    def test_multiple_ready_callbacks_all_fire(self):
        promise = Promise()
        seen = []
        for i in range(3):
            promise.on_ready(lambda v, i=i: seen.append((i, v)))
        promise.resolve("v")
        assert seen == [(0, "v"), (1, "v"), (2, "v")]

    def test_on_error_fires(self):
        promise = Promise()
        seen = []
        promise.on_error(seen.append)
        error = OperationError("bad")
        promise.reject(error)
        assert seen == [error]

    def test_error_callbacks_not_fired_on_resolve(self):
        promise = Promise()
        errors = []
        promise.on_error(errors.append)
        promise.resolve(1)
        assert errors == []


class TestThen:
    def test_then_transforms_value(self):
        result = Promise.resolved(2).then(lambda x: x * 10)
        assert result.value == 20

    def test_then_chains(self):
        result = Promise.resolved(1).then(lambda x: x + 1).then(lambda x: x * 3)
        assert result.value == 6

    def test_then_flattens_promises(self):
        result = Promise.resolved(5).then(lambda x: Promise.resolved(x + 1))
        assert result.value == 6

    def test_then_propagates_error(self):
        failed = Promise.failed(OperationError("err")).then(lambda x: x)
        assert failed.is_failed()

    def test_then_captures_raised_exception(self):
        def boom(_):
            raise OperationError("inner")
        result = Promise.resolved(1).then(boom)
        assert result.is_failed()
        assert isinstance(result.error, OperationError)

    def test_then_on_pending_promise(self):
        promise = Promise()
        chained = promise.then(lambda x: x + 1)
        assert not chained.is_done()
        promise.resolve(9)
        assert chained.value == 10


class TestAll:
    def test_all_empty(self):
        assert Promise.all([]).value == []

    def test_all_preserves_order(self):
        p1, p2, p3 = Promise(), Promise(), Promise()
        combined = Promise.all([p1, p2, p3])
        p3.resolve("c")
        p1.resolve("a")
        assert not combined.is_done()
        p2.resolve("b")
        assert combined.value == ["a", "b", "c"]

    def test_all_fails_on_first_error(self):
        p1, p2 = Promise(), Promise()
        combined = Promise.all([p1, p2])
        p1.reject(OperationError("bad"))
        assert combined.is_failed()

    def test_all_with_already_resolved(self):
        combined = Promise.all([Promise.resolved(1), Promise.resolved(2)])
        assert combined.value == [1, 2]


@given(st.lists(st.integers(), min_size=0, max_size=20))
def test_all_collects_every_value(values):
    promises = [Promise() for _ in values]
    combined = Promise.all(promises)
    for promise, value in zip(promises, values):
        promise.resolve(value)
    if values:
        assert combined.value == values
    else:
        assert combined.value == []


@given(st.integers())
def test_then_identity_law(value):
    assert Promise.resolved(value).then(lambda x: x).value == value
