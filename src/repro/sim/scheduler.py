"""Event scheduler: the heart of the discrete-event simulation.

Events are callbacks ordered by (time, sequence-number).  The sequence number
makes execution order deterministic for events scheduled at the same instant,
which in turn makes every experiment in :mod:`repro.bench` reproducible.

Entries are plain ``(time, seq, fn, args, kwargs, marker)`` tuples so
ordering is decided by C-level tuple comparison on the first two fields
(``seq`` is unique, so nothing beyond it is ever compared).  Three write
paths feed the queue:

* :meth:`Scheduler.schedule` / :meth:`Scheduler.schedule_at` return an
  :class:`Event` handle (stored in the marker slot) so callers can cancel
  pending work (timeouts);
* :meth:`Scheduler.schedule_call` / :meth:`Scheduler.schedule_call_at` are
  the fire-and-forget fast path — no handle, no kwargs mapping, and no
  per-event object allocation.  Message deliveries and processing-queue
  jobs (the dominant event classes) use it;
* :meth:`Scheduler.schedule_batch_at` coalesces same-timestamp callbacks
  (a coordinator's multi-replica fan-out) into **one** queue entry holding
  the whole batch, drained in order by :meth:`run`.  The batch occupies
  consecutive sequence numbers, each callback still executes — and is
  traced — as its own event, so execution order, event counts, and golden
  ``(time, seq)`` traces are identical to individual pushes; only the
  queue traffic is amortized.

Storage is a **timing wheel** (calendar queue) over a binary heap:

* Events due within the wheel's horizon (``wheel_slots * wheel_width_ms``
  of simulated time) go into per-tick slot lists — an O(1) append instead
  of an O(log n) heap sift.  A slot is sorted once, when the wheel cursor
  reaches its tick; because ``(time, seq)`` entries are compared exactly
  as the heap would compare them, the drain order (and therefore every
  golden event trace) is bit-identical to the heap's.
* Events beyond the horizon (long timeouts, run-end sentinels) go to an
  **overflow heap** and migrate into the wheel lazily as the cursor's
  horizon sweeps over their timestamps.
* The cursor's own slot is kept heap-ordered at all times (activation
  sorts it; same-tick inserts use ``heappush``), so scheduling into the
  current tick during the drain preserves order.
* ``scheduler.wheel = False`` is a kill-switch mirroring
  ``batch_dispatch``: it dumps the wheel back into the heap and routes
  every insert through the classic heap-only path.  The determinism suite
  runs both ways to prove the traces match.

Live-event accounting is incremental: scheduling increments a live counter,
execution and cancellation decrement it, so ``pending(live_only=True)`` —
the runner idle check — is O(1) with no scan.  Cancelled entries are
additionally purged in bulk once they outnumber live ones (amortized O(1)
per cancellation), so long fault runs with many abandoned timeouts do not
grow the queue unboundedly.  :meth:`Scheduler._scan_live` is the O(n)
audit of the same invariant, used by the regression tests.
"""

from __future__ import annotations

import gc
import heapq
from typing import Any, Callable, Optional, Sequence, Tuple

from repro.sim.clock import Clock

#: Lazy-purge trigger: compact the queue once at least this many cancelled
#: events are queued *and* they outnumber the live ones.
_PURGE_THRESHOLD = 512

#: Marker-slot sentinel distinguishing a batch entry from an Event handle.
_BATCH = object()

#: Sentinel returned by :meth:`Scheduler._next_active` when the next event
#: lies beyond the run's ``until`` limit (the cursor is *not* advanced).
_BEYOND = object()

_INFINITY = float("inf")
_NO_CAP = 1 << 62

#: Default wheel geometry: 1024 slots of 1 ms give a 1.024 s horizon —
#: service times, RTTs and protocol timeouts land in the wheel; run-end
#: sentinels and multi-second timers take the overflow heap.
_WHEEL_SLOTS = 1024
_WHEEL_WIDTH_MS = 1.0


class Event:
    """A cancellation handle for a scheduled callback.

    Instances are returned by :meth:`Scheduler.schedule` so callers can
    cancel pending work (e.g. a timeout that is no longer needed).
    """

    __slots__ = ("time", "seq", "cancelled", "_scheduler")

    def __init__(self, time: float, seq: int,
                 scheduler: Optional["Scheduler"] = None) -> None:
        self.time = time
        self.seq = seq
        self.cancelled = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when its time comes."""
        if not self.cancelled:
            self.cancelled = True
            if self._scheduler is not None:
                self._scheduler._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, seq={self.seq}, {state})"


class Scheduler:
    """Discrete-event scheduler with a simulated :class:`Clock`."""

    __slots__ = ("clock", "_heap", "_seq", "_events_executed", "_cancelled",
                 "_live", "_trace", "batch_dispatch", "_wheel_size",
                 "_wheel_mask", "_wheel_width", "_wheel_inv", "_slots",
                 "_wheel_count", "_cursor", "_wheel_enabled", "_horizon")

    def __init__(self, clock: Optional[Clock] = None,
                 wheel_slots: int = _WHEEL_SLOTS,
                 wheel_width_ms: float = _WHEEL_WIDTH_MS) -> None:
        if wheel_slots <= 0 or wheel_slots & (wheel_slots - 1):
            raise ValueError(
                f"wheel_slots must be a power of two, got {wheel_slots}")
        if wheel_width_ms <= 0:
            raise ValueError(
                f"wheel_width_ms must be positive, got {wheel_width_ms}")
        self.clock = clock if clock is not None else Clock()
        #: Overflow heap (sole store with the wheel off):
        #: (time, seq, fn, args, kwargs|None, marker) tuples.
        self._heap: list = []
        self._seq = 0
        self._events_executed = 0
        self._cancelled = 0
        self._live = 0
        self._trace: Optional[list] = None
        #: Test/debug switch: ``False`` makes :meth:`schedule_batch_at` push
        #: individual entries instead of one batch entry.  Same sequence
        #: numbers, same execution order, same traces — the determinism
        #: tests run both ways to prove it.
        self.batch_dispatch = True
        # -- timing wheel ---------------------------------------------------
        self._wheel_size = wheel_slots
        self._wheel_mask = wheel_slots - 1
        self._wheel_width = float(wheel_width_ms)
        self._wheel_inv = 1.0 / float(wheel_width_ms)
        #: Per-tick buckets.  Invariants: every stored entry's tick lies in
        #: ``[cursor, cursor + wheel_slots)`` (so each bucket holds at most
        #: one tick's entries at a time), and the cursor's own bucket is
        #: always heap-ordered.
        self._slots: list = [[] for _ in range(wheel_slots)]
        #: Entries (not callbacks) currently stored in the wheel buckets.
        self._wheel_count = 0
        self._cursor = 0
        self._wheel_enabled = True
        #: Absolute time bound of the wheel window; inserts below it go to
        #: a bucket, at or above it to the overflow heap.  ``-inf`` when the
        #: wheel is off, so every insert falls through to the heap.
        self._horizon = wheel_slots * self._wheel_width

    @property
    def events_executed(self) -> int:
        """Number of events run so far (useful for runaway detection)."""
        return self._events_executed

    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self.clock._now

    def pending(self, live_only: bool = False) -> int:
        """Number of callbacks still queued.

        By default this counts cancelled-but-unpopped entries too (they
        still occupy queue slots); ``live_only=True`` reports only the events
        that will actually execute.  Both are O(1): the counters are
        maintained incrementally by scheduling, cancellation, and execution
        (batch entries count every callback they carry).
        """
        if live_only:
            return self._live
        return self._live + self._cancelled

    # -- wheel kill-switch -------------------------------------------------
    @property
    def wheel(self) -> bool:
        """Whether the timing-wheel backend is active (default ``True``).

        Assigning ``False`` migrates every bucketed entry back to the heap
        and routes subsequent inserts through the classic heap-only path;
        assigning ``True`` re-anchors the wheel at the current time (queued
        entries migrate back lazily as the cursor sweeps).  Execution order
        is identical either way — the determinism suite runs both.
        """
        return self._wheel_enabled

    @wheel.setter
    def wheel(self, enabled: bool) -> None:
        enabled = bool(enabled)
        if enabled == self._wheel_enabled:
            return
        self._wheel_enabled = enabled
        if not enabled:
            heap = self._heap
            for slot in self._slots:
                if slot:
                    heap.extend(slot)
                    del slot[:]
            heapq.heapify(heap)
            self._wheel_count = 0
            self._horizon = -_INFINITY
        else:
            self._cursor = int(self.clock._now * self._wheel_inv)
            self._horizon = (self._cursor + self._wheel_size) \
                * self._wheel_width

    # -- tracing (determinism fingerprints) --------------------------------
    def start_trace(self) -> list:
        """Record ``(time, seq)`` for every executed event from now on.

        Returns the (live) list the trace accumulates into; used by the
        determinism regression tests to fingerprint the exact execution
        order of a run.  Takes effect from the next :meth:`run`/:meth:`step`
        call.
        """
        self._trace = []
        return self._trace

    def stop_trace(self) -> None:
        self._trace = None

    # -- scheduling --------------------------------------------------------
    def _insert(self, timestamp: float, entry: tuple) -> None:
        """Store one entry: wheel bucket within the horizon, else heap.

        ``_wheel_count`` tracks entries in *non-cursor* buckets only: the
        cursor's own (heap-ordered) bucket is accounted by its truthiness
        in the run loop, so draining it costs no counter updates.
        """
        if timestamp < self._horizon:
            tick = int(timestamp * self._wheel_inv)
            if tick == self._cursor:
                heapq.heappush(self._slots[tick & self._wheel_mask], entry)
            else:
                self._slots[tick & self._wheel_mask].append(entry)
                self._wheel_count += 1
        else:
            heapq.heappush(self._heap, entry)

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 **kwargs: Any) -> Event:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        timestamp = self.clock._now + delay
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        event = Event(timestamp, seq, self)
        self._insert(timestamp,
                     (timestamp, seq, fn, args, kwargs or None, event))
        return event

    def schedule_at(self, timestamp: float, fn: Callable[..., Any],
                    *args: Any, **kwargs: Any) -> Event:
        """Schedule ``fn`` at an absolute simulated time."""
        if timestamp < self.clock._now:
            raise ValueError(
                f"cannot schedule in the past: {timestamp} < {self.now()}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        event = Event(timestamp, seq, self)
        self._insert(timestamp,
                     (timestamp, seq, fn, args, kwargs or None, event))
        return event

    def schedule_call(self, delay: float, fn: Callable[..., Any],
                      args: tuple = ()) -> None:
        """Fire-and-forget :meth:`schedule`: no kwargs, no cancellation
        handle, no per-event allocation.  The hot path for message
        deliveries and queue jobs."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        timestamp = self.clock._now + delay
        # _insert, inlined: this and schedule_call_at are the two hottest
        # write paths in the simulator.
        if timestamp < self._horizon:
            tick = int(timestamp * self._wheel_inv)
            if tick == self._cursor:
                heapq.heappush(self._slots[tick & self._wheel_mask],
                               (timestamp, seq, fn, args, None, None))
            else:
                self._slots[tick & self._wheel_mask].append(
                    (timestamp, seq, fn, args, None, None))
                self._wheel_count += 1
        else:
            heapq.heappush(self._heap,
                           (timestamp, seq, fn, args, None, None))

    def schedule_call_at(self, timestamp: float, fn: Callable[..., Any],
                         args: tuple = (),
                         kwargs: Optional[dict] = None) -> None:
        """Fire-and-forget :meth:`schedule_at` (see :meth:`schedule_call`)."""
        if timestamp < self.clock._now:
            raise ValueError(
                f"cannot schedule in the past: {timestamp} < {self.now()}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        kwargs = kwargs or None
        if timestamp < self._horizon:
            tick = int(timestamp * self._wheel_inv)
            if tick == self._cursor:
                heapq.heappush(self._slots[tick & self._wheel_mask],
                               (timestamp, seq, fn, args, kwargs, None))
            else:
                self._slots[tick & self._wheel_mask].append(
                    (timestamp, seq, fn, args, kwargs, None))
                self._wheel_count += 1
        else:
            heapq.heappush(self._heap,
                           (timestamp, seq, fn, args, kwargs, None))

    def schedule_batch_at(self, timestamp: float,
                          calls: Sequence[Tuple[Callable[..., Any], tuple]]
                          ) -> None:
        """Fire-and-forget batch: every ``(fn, args)`` runs at ``timestamp``.

        The batch takes consecutive sequence numbers in list order and is
        stored as **one** queue entry; :meth:`run` drains it callback by
        callback, tracing and counting each as its own event.  Equivalent to
        ``schedule_call_at`` per call in every observable way (use it for
        same-instant fan-outs, e.g. a write coordinator's replica
        broadcast), but with a single push/pop for the whole group.
        """
        count = len(calls)
        if count == 0:
            return
        if timestamp < self.clock._now:
            raise ValueError(
                f"cannot schedule in the past: {timestamp} < {self.now()}"
            )
        seq = self._seq
        if count == 1 or not self.batch_dispatch:
            for fn, args in calls:
                self._insert(timestamp, (timestamp, seq, fn, args, None, None))
                seq += 1
        else:
            self._insert(timestamp,
                         (timestamp, seq, None, tuple(calls), None, _BATCH))
            seq += count
        self._seq = seq
        self._live += count

    def call_soon(self, fn: Callable[..., Any], *args: Any,
                  **kwargs: Any) -> Event:
        """Schedule ``fn`` at the current instant (after pending same-time events)."""
        return self.schedule(0.0, fn, *args, **kwargs)

    # -- cancellation bookkeeping ------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts the queue when cancelled
        entries dominate (amortized O(1) per cancellation), so abandoned
        timeouts cannot grow it unboundedly."""
        self._live -= 1
        self._cancelled += 1
        if (self._cancelled >= _PURGE_THRESHOLD
                and self._cancelled * 2 > len(self._heap) + self._wheel_count):
            # In place: the run() loop holds references to these lists.
            self._heap[:] = [entry for entry in self._heap
                             if entry[5] is None or entry[5] is _BATCH
                             or not entry[5].cancelled]
            heapq.heapify(self._heap)
            stored = 0
            cursor_index = self._cursor & self._wheel_mask
            for index, slot in enumerate(self._slots):
                if not slot:
                    continue
                slot[:] = [entry for entry in slot
                           if entry[5] is None or entry[5] is _BATCH
                           or not entry[5].cancelled]
                if index == cursor_index:
                    # The cursor bucket stays heap-ordered and is excluded
                    # from the non-cursor storage count.
                    heapq.heapify(slot)
                else:
                    stored += len(slot)
            self._wheel_count = stored
            self._cancelled = 0

    def _scan_live(self) -> int:
        """O(n) audit of ``pending(live_only=True)``: walk the heap and every
        wheel bucket, counting callbacks that will actually execute (batch
        entries count each carried callback).  Test/debug only — the run
        loops never call this."""

        def _count(entries: list) -> int:
            total = 0
            for entry in entries:
                marker = entry[5]
                if marker is _BATCH:
                    total += len(entry[3])
                elif marker is None or not marker.cancelled:
                    total += 1
            return total

        return _count(self._heap) + sum(
            _count(slot) for slot in self._slots if slot)

    # -- wheel cursor ------------------------------------------------------
    def _next_active(self, limit: float):
        """Advance the cursor to the next non-empty bucket and activate it.

        Migrates due overflow entries into the wheel, finds the next tick
        holding work, and sorts that bucket so it is a valid heap for the
        drain loop.  Returns the activated bucket, ``None`` when no events
        remain, or :data:`_BEYOND` — *without* advancing the cursor — when
        the next event's tick starts after ``limit`` (so a stopped run
        leaves the cursor at or before the clock, keeping the insert-path
        invariant that new entries never land behind it).
        """
        heap = self._heap
        slots = self._slots
        mask = self._wheel_mask
        inv = self._wheel_inv
        cursor = self._cursor
        horizon = self._horizon
        heappop = heapq.heappop
        # Overflow entries normally sit at or beyond the horizon; after a
        # wheel re-enable they can lie inside the current window (even at
        # the cursor's own tick), so sweep them in before looking around.
        if heap and heap[0][0] < horizon:
            while heap and heap[0][0] < horizon:
                entry = heappop(heap)
                tick = int(entry[0] * inv)
                if tick == cursor:
                    heapq.heappush(slots[tick & mask], entry)
                else:
                    slots[tick & mask].append(entry)
                    self._wheel_count += 1
            active = slots[cursor & mask]
            if active:
                return active
        if self._wheel_count == 0:
            if not heap:
                return None
            next_tick = int(heap[0][0] * inv)
        else:
            # Bounded by the wheel size: a non-empty wheel holds a tick in
            # (cursor, cursor + wheel_slots), each in a distinct bucket.
            probe = cursor + 1
            while not slots[probe & mask]:
                probe += 1
            next_tick = probe
        if next_tick * self._wheel_width > limit:
            return _BEYOND
        self._cursor = next_tick
        active = slots[next_tick & mask]
        # The activated bucket becomes the cursor bucket: its entries leave
        # the non-cursor count now, and the drain loop pops them without
        # touching any counter.
        self._wheel_count -= len(active)
        horizon = self._horizon = (next_tick + self._wheel_size) \
            * self._wheel_width
        while heap and heap[0][0] < horizon:
            entry = heappop(heap)
            tick = int(entry[0] * inv)
            if tick == next_tick:
                active.append(entry)
            else:
                slots[tick & mask].append(entry)
                self._wheel_count += 1
        active.sort()
        return active

    def _reanchor(self) -> None:
        """Re-align the (empty) wheel with the clock so future inserts can
        never land in a bucket behind the cursor."""
        self._cursor = int(self.clock._now * self._wheel_inv)
        self._horizon = (self._cursor + self._wheel_size) * self._wheel_width

    def _peek_time(self) -> Optional[float]:
        """Timestamp of the earliest queued entry (cancelled included), or
        ``None`` when nothing is queued.  Does not advance the cursor —
        used by the ``max_events`` stop to mirror the heap loop's clock
        semantics without committing a bucket activation."""
        best = self._heap[0][0] if self._heap else None
        cursor_slot = self._slots[self._cursor & self._wheel_mask]
        if cursor_slot:
            # The cursor bucket is heap-ordered, so its head is its minimum.
            earliest = cursor_slot[0][0]
            if best is None or earliest < best:
                best = earliest
        elif self._wheel_count:
            slots = self._slots
            mask = self._wheel_mask
            probe = self._cursor + 1
            while not slots[probe & mask]:
                probe += 1
            earliest = min(slots[probe & mask])[0]
            if best is None or earliest < best:
                best = earliest
        return best

    # -- execution ---------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.

        A batch entry executes as a unit: all its callbacks run (each
        counted and traced individually) before ``step`` returns.

        Returns:
            True if an event was executed, False if the queue was empty.
        """
        if not self._wheel_enabled:
            return self._step_heap()
        while True:
            active = self._slots[self._cursor & self._wheel_mask]
            if not active:
                active = self._next_active(_INFINITY)
                if active is None:
                    self._reanchor()
                    return False
            entry = heapq.heappop(active)
            marker = entry[5]
            if marker is not None and marker is not _BATCH:
                if marker.cancelled:
                    self._cancelled -= 1
                    continue
                # Detach: a late cancel() on an already-fired event must not
                # perturb the cancelled-entry bookkeeping.
                marker._scheduler = None
            self.clock.advance_to(entry[0])
            if marker is _BATCH:
                self._run_batch(entry)
                return True
            self._events_executed += 1
            self._live -= 1
            if self._trace is not None:
                self._trace.append((entry[0], entry[1]))
            kwargs = entry[4]
            if kwargs:
                entry[2](*entry[3], **kwargs)
            else:
                entry[2](*entry[3])
            return True

    def _step_heap(self) -> bool:
        """Heap-only :meth:`step` (wheel kill-switch off)."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            marker = entry[5]
            if marker is not None and marker is not _BATCH:
                if marker.cancelled:
                    self._cancelled -= 1
                    continue
                # Detach: a late cancel() on an already-fired event must not
                # perturb the cancelled-entry bookkeeping.
                marker._scheduler = None
            self.clock.advance_to(entry[0])
            if marker is _BATCH:
                self._run_batch(entry)
                return True
            self._events_executed += 1
            self._live -= 1
            if self._trace is not None:
                self._trace.append((entry[0], entry[1]))
            kwargs = entry[4]
            if kwargs:
                entry[2](*entry[3], **kwargs)
            else:
                entry[2](*entry[3])
            return True
        return False

    def _run_batch(self, entry: tuple) -> None:
        """Drain one batch entry: every callback is its own traced event."""
        timestamp, first_seq = entry[0], entry[1]
        calls = entry[3]
        count = len(calls)
        trace = self._trace
        if trace is not None:
            trace.extend((timestamp, first_seq + i) for i in range(count))
        self._events_executed += count
        self._live -= count
        for fn, args in calls:
            fn(*args)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been executed.

        ``until`` is an absolute simulated time; events scheduled strictly
        after it remain queued and the clock stops at ``until``.  A batch
        entry whose turn comes with fewer than ``len(batch)`` events of
        budget left still executes whole (``max_events`` is a runaway
        guard, not an exact quota).
        """
        if not self._wheel_enabled:
            return self._run_heap(until, max_events)
        clock = self.clock
        trace = self._trace
        heappop = heapq.heappop
        slots = self._slots
        mask = self._wheel_mask
        limit = _INFINITY if until is None else until
        cap = _NO_CAP if max_events is None else max_events
        executed = 0
        # Steady-state event execution allocates almost nothing that the
        # cyclic collector can reclaim (messages and per-op records are
        # pooled, everything else dies by refcount), so generational GC scans
        # during the drain are pure overhead.  Suspend it for the duration;
        # any cycles produced are collected when the caller's next enabled
        # collection runs.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                active = slots[self._cursor & mask]
                if not active:
                    if executed >= cap:
                        # The cap stop must not commit a cursor advance (a
                        # committed-but-undrained bucket would let a later
                        # insert land behind the cursor), but it still owes
                        # the caller the heap loop's clock semantics: the
                        # clock reaches ``until`` when nothing runnable
                        # remains before it.
                        if self._wheel_count == 0 and not self._heap:
                            if until is not None and until > clock._now:
                                clock.advance_to(until)
                            self._reanchor()
                        elif until is not None and until > clock._now:
                            earliest = self._peek_time()
                            if earliest is not None and earliest > limit:
                                clock.advance_to(until)
                        return
                    active = self._next_active(limit)
                    if active is None:
                        break
                    if active is _BEYOND:
                        if until is not None and until > clock._now:
                            clock.advance_to(until)
                        return
                while active:
                    entry = heappop(active)
                    timestamp = entry[0]
                    if timestamp > limit:
                        heapq.heappush(active, entry)
                        clock.advance_to(until)
                        return
                    if executed >= cap:
                        heapq.heappush(active, entry)
                        return
                    # One marker test covers batch, cancelled, and handle
                    # entries; the overwhelmingly common plain entry pays a
                    # single branch.  A cancelled entry pushed back above
                    # keeps its ``_cancelled`` count until it is finally
                    # popped in bounds (or a purge removes it).
                    marker = entry[5]
                    if marker is not None:
                        if marker is _BATCH:
                            clock._now = timestamp
                            calls = entry[3]
                            count = len(calls)
                            if trace is not None:
                                first_seq = entry[1]
                                trace.extend((timestamp, first_seq + i)
                                             for i in range(count))
                            executed += count
                            for fn, args in calls:
                                fn(*args)
                            continue
                        if marker.cancelled:
                            self._cancelled -= 1
                            continue
                        # Detach: a late cancel() on an already-fired event
                        # must not perturb the cancelled-entry bookkeeping.
                        marker._scheduler = None
                    # Buckets activate in nondecreasing time order, so this
                    # direct assignment cannot move the clock backwards
                    # (Clock.advance_to enforces the same invariant with a
                    # per-event method call).
                    clock._now = timestamp
                    executed += 1
                    if trace is not None:
                        trace.append((timestamp, entry[1]))
                    kwargs = entry[4]
                    if kwargs:
                        entry[2](*entry[3], **kwargs)
                    else:
                        entry[2](*entry[3])
            if until is not None and until > clock._now:
                clock.advance_to(until)
            # Fully drained: re-align the wheel with wherever the clock
            # stopped, so the cursor never sits ahead of a future insert.
            self._reanchor()
        finally:
            if gc_was_enabled:
                gc.enable()
            self._events_executed += executed
            self._live -= executed

    def _run_heap(self, until: Optional[float] = None,
                  max_events: Optional[int] = None) -> None:
        """Heap-only :meth:`run` (wheel kill-switch off)."""
        heap = self._heap
        clock = self.clock
        trace = self._trace
        pop = heapq.heappop
        limit = _INFINITY if until is None else until
        cap = _NO_CAP if max_events is None else max_events
        executed = 0
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap:
                entry = pop(heap)
                marker = entry[5]
                if marker is not None and marker is not _BATCH:
                    if marker.cancelled:
                        self._cancelled -= 1
                        continue
                timestamp = entry[0]
                if timestamp > limit:
                    heapq.heappush(heap, entry)
                    clock.advance_to(until)
                    return
                if executed >= cap:
                    heapq.heappush(heap, entry)
                    return
                # The heap pops in nondecreasing time order, so this direct
                # assignment cannot move the clock backwards (Clock.advance_to
                # enforces the same invariant with a per-event method call).
                clock._now = timestamp
                if marker is not None:
                    if marker is _BATCH:
                        calls = entry[3]
                        count = len(calls)
                        if trace is not None:
                            first_seq = entry[1]
                            trace.extend((timestamp, first_seq + i)
                                         for i in range(count))
                        executed += count
                        for fn, args in calls:
                            fn(*args)
                        continue
                    # Detach: a late cancel() on an already-fired event must
                    # not perturb the cancelled-entry bookkeeping.
                    marker._scheduler = None
                executed += 1
                if trace is not None:
                    trace.append((timestamp, entry[1]))
                kwargs = entry[4]
                if kwargs:
                    entry[2](*entry[3], **kwargs)
                else:
                    entry[2](*entry[3])
            if until is not None and until > clock._now:
                clock.advance_to(until)
        finally:
            if gc_was_enabled:
                gc.enable()
            self._events_executed += executed
            self._live -= executed

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain.  Guards against runaway simulations."""
        self.run(max_events=max_events)
        if self.pending() and self._events_executed >= max_events:
            raise RuntimeError(
                f"simulation did not converge after {max_events} events"
            )
