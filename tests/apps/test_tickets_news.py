"""Tests for the ticket-selling and news-reader case-study applications."""

import pytest

from repro.apps.news import NewsReader
from repro.apps.tickets import TicketSeller
from repro.bindings.cached_store import CachedStoreBinding
from repro.bindings.local import LocalBinding
from repro.bindings.primary_backup import PrimaryBackupBinding
from repro.bindings.zookeeper import ZooKeeperQueueBinding
from repro.core.client import CorrectableClient
from repro.sim.scheduler import Scheduler
from repro.sim.topology import Region


def _seller_over_local(tickets, threshold=20):
    """A ticket seller backed by the in-memory queue binding."""
    binding = LocalBinding(weak_delay_ms=1, strong_delay_ms=40)
    for i in range(tickets):
        binding.store.enqueue("/tickets", f"ticket-{i}")
    seller = TicketSeller(CorrectableClient(binding), "/tickets",
                          threshold=threshold)
    return seller, binding


class TestTicketSellerLocal:
    def test_purchase_uses_preliminary_when_stock_high(self):
        seller, _ = _seller_over_local(tickets=100)
        outcomes = []
        seller.purchase_ticket(outcomes.append)
        assert outcomes[0].succeeded
        assert outcomes[0].used_preliminary
        assert seller.purchases_from_preliminary == 1

    def test_purchase_waits_for_final_when_stock_low(self):
        seller, _ = _seller_over_local(tickets=10, threshold=20)
        outcomes = []
        seller.purchase_ticket(outcomes.append)
        assert outcomes[0].succeeded
        assert not outcomes[0].used_preliminary
        assert seller.purchases_from_final == 1

    def test_sold_out(self):
        seller, _ = _seller_over_local(tickets=0)
        outcomes = []
        seller.purchase_ticket(outcomes.append)
        assert outcomes[0].sold_out
        assert not outcomes[0].succeeded
        assert seller.sold_out_responses == 1

    def test_baseline_never_uses_preliminary(self):
        seller, _ = _seller_over_local(tickets=100)
        outcomes = []
        seller.purchase_ticket(outcomes.append, use_icg=False)
        assert outcomes[0].succeeded
        assert not outcomes[0].used_preliminary

    def test_stock_ticket(self):
        seller, binding = _seller_over_local(tickets=0)
        done = []
        seller.stock_ticket("ticket-x", done.append)
        assert binding.store.queue_length("/tickets") == 1
        assert done

    def test_purchase_counter(self):
        seller, _ = _seller_over_local(tickets=50)
        for _ in range(3):
            seller.purchase_ticket(lambda outcome: None)
        assert seller.purchases_attempted == 3


class TestTicketSellerZooKeeper:
    def test_icg_purchase_is_much_faster_than_baseline(self, zookeeper_setup):
        env, cluster, _ = zookeeper_setup
        cluster.preload_queue("/tickets", [f"t{i}" for i in range(100)])
        node = cluster.add_client("retailer", Region.FRK,
                                  connect_region=Region.FRK, colocated=True)
        seller = TicketSeller(
            CorrectableClient(ZooKeeperQueueBinding(node, "/tickets")),
            "/tickets", threshold=20)
        outcomes = []
        seller.purchase_ticket(outcomes.append, use_icg=True)
        env.run_until_idle()
        seller.purchase_ticket(outcomes.append, use_icg=False)
        env.run_until_idle()
        assert outcomes[0].used_preliminary
        assert outcomes[0].latency_ms < 5.0
        assert outcomes[1].latency_ms > 20.0

    def test_no_overselling_under_contention(self, zookeeper_setup):
        env, cluster, _ = zookeeper_setup
        cluster.preload_queue("/stock", [f"t{i}" for i in range(30)])
        sellers = []
        sold = []
        for i in range(3):
            node = cluster.add_client(f"retailer-{i}", Region.FRK,
                                      connect_region=Region.FRK,
                                      colocated=True)
            sellers.append(TicketSeller(
                CorrectableClient(ZooKeeperQueueBinding(node, "/stock")),
                "/stock", threshold=5))

        def _loop(seller):
            def _buy():
                seller.purchase_ticket(_done)

            def _done(outcome):
                if outcome.sold_out:
                    return
                sold.append(outcome.ticket)
                _buy()

            _buy()

        for seller in sellers:
            _loop(seller)
        env.run_until_idle()
        assert len(sold) == 30            # every ticket sold exactly once
        assert len(set(sold)) == 30       # and never twice


class TestNewsReader:
    def _reader(self, scheduler=None, with_cache=True):
        inner = PrimaryBackupBinding(scheduler=scheduler, backup_rtt_ms=10,
                                     primary_rtt_ms=80)
        binding = CachedStoreBinding(inner, scheduler=scheduler,
                                     cache_latency_ms=0.5) if with_cache else inner
        return NewsReader(CorrectableClient(binding)), binding

    def test_publish_then_read_three_views(self):
        reader, _ = self._reader()
        reader.publish(["s1", "s2"])
        reader.get_latest_news()
        # First read: no cache entry yet (publish write-through filled it).
        assert reader.latest_display() == ["s1", "s2"]
        assert reader.refreshes >= 2

    def test_refresh_callback_receives_each_view(self):
        scheduler = Scheduler()
        reader, _ = self._reader(scheduler=scheduler)
        reader.publish(["a"])
        scheduler.run_until_idle()
        levels = []
        reader.get_latest_news(refresh=lambda items, level: levels.append(level))
        scheduler.run_until_idle()
        assert levels == ["cached", "weak", "strong"]

    def test_display_converges_to_freshest_view(self):
        scheduler = Scheduler()
        reader, binding = self._reader(scheduler=scheduler)
        reader.publish(["old"])
        scheduler.run_until_idle()
        # Publish fresh content but read before the backup catches up.
        binding.inner.store.write(NewsReader.NEWS_KEY, ["fresh"])
        reader.get_latest_news()
        scheduler.run_until_idle()
        assert reader.latest_display() == ["fresh"]
        history_levels = [entry["consistency"]
                          for entry in reader.display_history]
        assert history_levels[-1] == "strong"

    def test_two_view_configuration_without_cache(self):
        scheduler = Scheduler()
        reader, _ = self._reader(scheduler=scheduler, with_cache=False)
        reader.publish(["x"])
        scheduler.run_until_idle()
        reader.get_latest_news()
        scheduler.run_until_idle()
        assert [e["consistency"] for e in reader.display_history] == \
            ["weak", "strong"]
