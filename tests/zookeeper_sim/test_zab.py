"""Tests for the Zab proposal tracker and commit log."""

import pytest
from hypothesis import given, strategies as st

from repro.zookeeper_sim.zab import CommitLog, ProposalTracker, Transaction


def _txn(zxid, op="create", path="/q/item-"):
    return Transaction(zxid=zxid, op=op, path=path, origin_server="s1",
                       origin_request=zxid)


class TestProposalTracker:
    def test_zxids_monotonic(self):
        tracker = ProposalTracker(3)
        assert [tracker.next_zxid() for _ in range(4)] == [1, 2, 3, 4]

    def test_quorum_size(self):
        assert ProposalTracker(3).quorum_size == 2
        assert ProposalTracker(5).quorum_size == 3
        assert ProposalTracker(1).quorum_size == 1

    def test_commit_exactly_at_quorum(self):
        tracker = ProposalTracker(3)
        tracker.track(_txn(1))
        assert not tracker.record_ack(1, "leader")
        assert tracker.record_ack(1, "f1")          # reaches 2 of 3
        assert not tracker.record_ack(1, "f2")      # already committed

    def test_duplicate_acks_not_double_counted(self):
        tracker = ProposalTracker(3)
        tracker.track(_txn(1))
        assert not tracker.record_ack(1, "leader")
        assert not tracker.record_ack(1, "leader")
        assert tracker.record_ack(1, "f1")

    def test_ack_for_unknown_zxid_ignored(self):
        tracker = ProposalTracker(3)
        assert not tracker.record_ack(99, "f1")

    def test_duplicate_track_rejected(self):
        tracker = ProposalTracker(3)
        tracker.track(_txn(1))
        with pytest.raises(ValueError):
            tracker.track(_txn(1))

    def test_pending_count_and_forget(self):
        tracker = ProposalTracker(3)
        tracker.track(_txn(1))
        tracker.track(_txn(2))
        assert tracker.pending_count() == 2
        tracker.record_ack(1, "a")
        tracker.record_ack(1, "b")
        assert tracker.pending_count() == 1
        tracker.forget(1)
        assert tracker.transaction(1) is None
        assert tracker.transaction(2) is not None

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            ProposalTracker(0)


class TestCommitLog:
    def test_applies_in_zxid_order(self):
        log = CommitLog()
        log.learn(_txn(1))
        log.learn(_txn(2))
        log.mark_committed(2)
        assert log.ready_transactions() == []       # 1 not yet committed
        log.mark_committed(1)
        ready = log.ready_transactions()
        assert [t.zxid for t in ready] == [1, 2]
        assert log.last_applied == 2

    def test_commit_before_learn_waits_for_proposal(self):
        log = CommitLog()
        log.mark_committed(1)
        assert log.ready_transactions() == []
        log.learn(_txn(1))
        assert [t.zxid for t in log.ready_transactions()] == [1]

    def test_no_double_apply(self):
        log = CommitLog()
        log.learn(_txn(1))
        log.mark_committed(1)
        assert len(log.ready_transactions()) == 1
        assert log.ready_transactions() == []


@given(st.permutations(list(range(1, 9))))
def test_commit_log_total_order_is_independent_of_commit_order(order):
    """Whatever order commits arrive in, application follows zxid order."""
    log = CommitLog()
    for zxid in range(1, 9):
        log.learn(_txn(zxid))
    applied = []
    for zxid in order:
        log.mark_committed(zxid)
        applied.extend(t.zxid for t in log.ready_transactions())
    assert applied == list(range(1, 9))
