"""Tests for the figure-regeneration command line."""

import pytest

from repro.bench.cli import (
    build_parser,
    figure_names,
    figure_supports_histograms,
    main,
    run_figure,
)


class TestParser:
    def test_accepts_every_figure(self):
        parser = build_parser()
        for name in figure_names():
            args = parser.parse_args([name, "--quick"])
            assert args.figure == name and args.quick

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_seed_parsed(self):
        args = build_parser().parse_args(["fig12", "--seed", "7"])
        assert args.seed == 7

    def test_perf_options_parsed(self):
        args = build_parser().parse_args(
            ["perf", "--quick", "--profile", "10", "--repeats", "2",
             "--label", "x", "--perf-scenario", "fig09-zk-queue",
             "--no-save", "--check-regression"])
        assert args.figure == "perf" and args.quick
        assert args.profile == 10 and args.repeats == 2
        assert args.label == "x"
        assert args.perf_scenarios == ["fig09-zk-queue"]
        assert args.no_save and args.check_regression

    def test_show_budget_parsed(self):
        args = build_parser().parse_args(["perf", "--show-budget"])
        assert args.show_budget
        assert not build_parser().parse_args(["perf"]).show_budget

    def test_jobs_and_histograms_parsed(self):
        args = build_parser().parse_args(
            ["fig06", "--quick", "--jobs", "4", "--histograms"])
        assert args.jobs == "4" and args.histograms
        assert build_parser().parse_args(["fig06", "--jobs", "auto"]).jobs \
            == "auto"
        assert build_parser().parse_args(["fig06"]).jobs == "1"


class TestRunFigure:
    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            run_figure("fig99")

    def test_quick_fig09_produces_report(self):
        report = run_figure("fig09", quick=True)
        assert "Figure 9" in report
        assert "leader" in report

    def test_quick_fig12_with_seed(self):
        report = run_figure("fig12", quick=True, seed=9)
        assert "Figure 12" in report

    def test_main_prints_report(self, capsys):
        assert main(["fig09", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out

    def test_parallel_report_matches_serial(self):
        assert run_figure("fig09", quick=True, jobs=2) == \
            run_figure("fig09", quick=True)

    def test_bad_jobs_value_rejected(self):
        with pytest.raises(ValueError):
            run_figure("fig09", quick=True, jobs="warp")

    def test_main_reports_bad_jobs_cleanly(self, capsys):
        assert main(["fig09", "--quick", "--jobs", "warp"]) == 2
        assert "jobs" in capsys.readouterr().err

    def test_histograms_rejected_for_unsupported_figure(self, capsys):
        with pytest.raises(ValueError):
            run_figure("fig09", quick=True, use_histograms=True)
        assert main(["fig09", "--quick", "--histograms"]) == 2
        assert "histograms" in capsys.readouterr().err

    def test_histograms_supported_for_fig06(self):
        report = run_figure("fig06", quick=True, use_histograms=True)
        assert "Figure 6" in report

    def test_histogram_capability_lookup(self):
        # 'all --histograms' composes by applying the flag only where
        # supported, which relies on this capability probe.
        assert figure_supports_histograms("fig06")
        assert not figure_supports_histograms("fig09")
        with pytest.raises(KeyError):
            figure_supports_histograms("fig99")


class TestShowBudget:
    def test_comparison_table_with_committed_reference(self):
        from repro.bench.perf import format_budget_comparison

        fresh = {"profiled_s": 2.0,
                 "shares": {"scheduler": 0.30, "network": 0.20,
                            "workload": 0.10, "metrics": 0.05,
                            "protocol": 0.25, "other": 0.10}}
        committed = {"profiled_s": 2.1,
                     "shares": {"scheduler": 0.25, "network": 0.20,
                                "workload": 0.10, "metrics": 0.05,
                                "protocol": 0.33, "other": 0.07}}
        table = format_budget_comparison("fig09-zk-queue", fresh, committed)
        assert "Budget vs committed: fig09-zk-queue" in table
        assert "committed" in table and "fresh" in table
        # scheduler grew 5 points, protocol shrank 8 points.
        assert "+5.0" in table and "-8.0" in table

    def test_comparison_table_without_reference(self):
        from repro.bench.perf import format_budget_comparison

        fresh = {"profiled_s": 1.0,
                 "shares": {"scheduler": 0.5, "network": 0.1, "workload": 0.1,
                            "metrics": 0.1, "protocol": 0.1, "other": 0.1}}
        table = format_budget_comparison("fig09-zk-queue", fresh, None)
        assert "no committed budget" in table
        assert "50.0%" in table

    def test_main_perf_show_budget_prints_comparison(self, tmp_path, capsys):
        from repro.bench.perf import main_perf

        output = tmp_path / "perf.json"
        assert main_perf(quick=True, repeats=1, show_budget=True,
                         scenarios=["fig09-zk-queue"], save=False,
                         output=str(output)) == 0
        out = capsys.readouterr().out
        assert "Budget vs committed: fig09-zk-queue" in out
        # A fresh trajectory has no committed budget to compare against.
        assert "no committed budget" in out
        # --show-budget alone prints no cProfile top-N listing.
        assert "cProfile top" not in out
