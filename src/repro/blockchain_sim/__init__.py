"""A small proof-of-work blockchain substrate.

Section 4.5 of the paper singles out blockchain applications as a natural
consumer of *many* incremental views: a Correctable can track a transaction's
confirmations as they accumulate until it is, with high probability, an
irrevocable part of the chain.  The authors implemented this use case but
omitted it for space; this package provides the substrate so the repository
can include it.

The simulator is deliberately minimal: a single logical chain mined at
stochastic (exponential) intervals on the simulation clock, with a
configurable probability that the newest block is orphaned by a small fork —
enough to exercise incremental confirmation levels and the occasional
rollback of a transaction that only had shallow confirmations.
"""

from repro.blockchain_sim.chain import Block, Blockchain, Transaction
from repro.blockchain_sim.network import BlockchainNetwork, BlockchainConfig

__all__ = [
    "Block",
    "Blockchain",
    "Transaction",
    "BlockchainNetwork",
    "BlockchainConfig",
]
