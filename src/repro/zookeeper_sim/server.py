"""ZooKeeper server node: leader or follower.

Request flow for a write transaction (create / delete / set / dequeue):

1. a client sends ``zk_request`` to the server it is connected to;
2. if the server is a follower it forwards the request to the leader
   (``zk_forward``); the leader assigns a zxid and broadcasts
   ``zab_proposal``;
3. followers acknowledge with ``zab_ack``; when a majority (leader included)
   acked, the leader sends ``zab_commit`` to all and applies the transaction;
4. every server applies committed transactions in zxid order; the server
   that originally received the client request (the *origin*) computes the
   result of the application locally and replies with ``zk_response``.

Reads (``get``, ``get_children``) are served from the contacted server's
local tree without coordination, exactly as in ZooKeeper.

Correctable ZooKeeper (CZK) fast path: a request flagged ``icg`` is first
*simulated* on the contacted server's local state; the simulated result is
returned immediately as ``zk_preliminary`` before the transaction enters Zab.
Simulations of concurrent requests on the same server observe each other's
tentative effects (e.g. two retailers simulating a dequeue obtain different
tickets), mirroring what applying the operations to a copy of the local
state would do.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.sim.network import MESSAGE_HEADER_BYTES, Message, Network
from repro.sim.node import Node
from repro.zookeeper_sim.config import ZooKeeperConfig
from repro.zookeeper_sim.datatree import DataTree, NoNodeError, NodeExistsError
from repro.zookeeper_sim.zab import CommitLog, ProposalTracker, Transaction

#: Operation types that mutate state and therefore go through Zab.
WRITE_OPS = {"create", "delete", "set", "enqueue", "dequeue"}
#: Operation types served locally by the contacted server.
READ_OPS = {"get", "get_children", "exists"}


class ZKServer(Node):
    """One member of the ensemble (leader or follower)."""

    def __init__(self, name: str, region: str, network: Network,
                 config: ZooKeeperConfig) -> None:
        super().__init__(name, region, network)
        self.config = config
        self.tree = DataTree()
        self.is_leader = False
        self.leader_name: Optional[str] = None
        self.ensemble: List[str] = []
        self.tracker: Optional[ProposalTracker] = None
        self.commit_log = CommitLog()
        # origin bookkeeping: zxid -> (client, request_id) for requests this
        # server received (it must answer them after applying the commit).
        self._origin_requests: Dict[int, Dict[str, Any]] = {}
        # follower-side: requests forwarded to the leader awaiting a zxid,
        # keyed by a server-local forward id (client req_ids may collide
        # across clients).
        self._forwarded: Dict[int, Dict[str, Any]] = {}
        self._next_forward_id = 1
        # CZK simulation overlay (tentative effects of in-flight operations).
        self._simulated_removed: Set[str] = set()
        self._simulated_created: Dict[str, int] = {}
        # Instrumentation.
        self.preliminaries_sent = 0
        self.transactions_applied = 0
        self.reads_served = 0

    # -- ensemble wiring ----------------------------------------------------
    def become_leader(self, ensemble: List[str]) -> None:
        self.is_leader = True
        self.leader_name = self.name
        self.ensemble = list(ensemble)
        self.tracker = ProposalTracker(len(ensemble))

    def become_follower(self, leader_name: str, ensemble: List[str]) -> None:
        self.is_leader = False
        self.leader_name = leader_name
        self.ensemble = list(ensemble)

    def _followers(self) -> List[str]:
        return [name for name in self.ensemble if name != self.name]

    # -- client requests -------------------------------------------------------
    def on_zk_request(self, message: Message) -> None:
        payload = message.payload
        self.process(self._handle_request, message.src, payload,
                     service_time_ms=self.config.request_service_ms)

    def _handle_request(self, client: str, payload: Dict[str, Any]) -> None:
        op = payload["op"]
        if op in READ_OPS:
            self._serve_read(client, payload)
            return
        if op not in WRITE_OPS:
            self._respond(client, payload["req_id"], ok=False,
                          error=f"unknown operation {op!r}")
            return
        if payload.get("icg"):
            self.process(self._send_preliminary, client, payload,
                         service_time_ms=self.config.simulation_service_ms)
        self._submit_write(client, payload)

    # -- local reads --------------------------------------------------------------
    def _serve_read(self, client: str, payload: Dict[str, Any]) -> None:
        self.reads_served += 1
        op = payload["op"]
        path = payload["path"]
        try:
            if op == "get":
                result = self.tree.get(path)
                size = (MESSAGE_HEADER_BYTES + self.config.ack_bytes
                        + self.config.element_size_bytes)
            elif op == "exists":
                result = self.tree.exists(path)
                size = MESSAGE_HEADER_BYTES + self.config.ack_bytes
            else:  # get_children
                result = self.tree.get_children(path)
                size = (MESSAGE_HEADER_BYTES + self.config.ack_bytes
                        + len(result) * self.config.child_name_bytes)
        except NoNodeError as exc:
            self._respond(client, payload["req_id"], ok=False,
                          error=f"NoNode: {exc}")
            return
        self._respond(client, payload["req_id"], ok=True, result=result,
                      size_bytes=size)

    # -- CZK preliminary (local simulation) -------------------------------------------
    def _send_preliminary(self, client: str, payload: Dict[str, Any]) -> None:
        result = self._simulate(payload)
        self.preliminaries_sent += 1
        self.send(client, "zk_preliminary",
                  {"req_id": payload["req_id"], "ok": True, "result": result},
                  size_bytes=(MESSAGE_HEADER_BYTES + self.config.ack_bytes
                              + self.config.element_size_bytes))

    def _simulate(self, payload: Dict[str, Any]) -> Any:
        """Apply the operation to the local state *tentatively*."""
        op = payload["op"]
        path = payload["path"]
        if op == "enqueue" or (op == "create" and payload.get("sequential")):
            queue_path = path if op == "enqueue" else path.rsplit("/", 1)[0]
            try:
                existing = self.tree.child_count(queue_path)
            except NoNodeError:
                existing = 0
            offset = self._simulated_created.get(queue_path, 0)
            self._simulated_created[queue_path] = offset + 1
            position = existing + offset
            return {"name": f"item-{position:010d}", "position": position}
        if op == "dequeue":
            try:
                children = self.tree.get_children(path)
            except NoNodeError:
                children = []
            available = [c for c in children
                         if f"{path}/{c}" not in self._simulated_removed]
            if not available:
                return {"item": None, "name": None, "remaining": 0}
            head = available[0]
            self._simulated_removed.add(f"{path}/{head}")
            return {"item": self.tree.get(f"{path}/{head}"),
                    "name": head,
                    "remaining": len(available) - 1}
        if op == "delete":
            self._simulated_removed.add(path)
            return {"deleted": path}
        if op in ("create", "set"):
            return {"path": path}
        return None

    # -- write path ----------------------------------------------------------------------
    def _submit_write(self, client: str, payload: Dict[str, Any]) -> None:
        request = {"client": client, "payload": payload}
        if self.is_leader:
            self._propose(origin_server=self.name, request=request)
        else:
            forward_id = self._next_forward_id
            self._next_forward_id += 1
            forwarded_payload = dict(payload)
            forwarded_payload["req_id"] = forward_id
            self.send(self.leader_name, "zk_forward",
                      {"origin": self.name, "payload": forwarded_payload},
                      size_bytes=(MESSAGE_HEADER_BYTES
                                  + self.config.path_size_bytes
                                  + self.config.element_size_bytes))
            self._forwarded[forward_id] = request

    def on_zk_forward(self, message: Message) -> None:
        payload = message.payload
        self.process(self._propose, payload["origin"],
                     {"client": None, "payload": payload["payload"]},
                     service_time_ms=self.config.proposal_service_ms)

    def _propose(self, origin_server: str, request: Dict[str, Any]) -> None:
        assert self.is_leader and self.tracker is not None
        payload = request["payload"]
        txn = Transaction(
            zxid=self.tracker.next_zxid(),
            op="create" if payload["op"] == "enqueue" else payload["op"],
            path=(payload["path"] + "/item-" if payload["op"] == "enqueue"
                  else payload["path"]),
            data=payload.get("data"),
            sequential=(payload["op"] == "enqueue"
                        or bool(payload.get("sequential"))),
            origin_server=origin_server,
            origin_request=payload["req_id"],
        )
        self.tracker.track(txn)
        self.commit_log.learn(txn)
        if origin_server == self.name and request["client"] is not None:
            self._origin_requests[txn.zxid] = {
                "client": request["client"], "req_id": payload["req_id"],
                "op": payload["op"],
            }
        proposal_payload = self._txn_payload(txn)
        for follower in self._followers():
            self.send(follower, "zab_proposal", proposal_payload,
                      size_bytes=(MESSAGE_HEADER_BYTES
                                  + self.config.path_size_bytes
                                  + self.config.element_size_bytes))
        # The leader acknowledges its own proposal.
        if self.tracker.record_ack(txn.zxid, self.name):
            self._commit(txn.zxid)

    @staticmethod
    def _txn_payload(txn: Transaction) -> Dict[str, Any]:
        return {"zxid": txn.zxid, "op": txn.op, "path": txn.path,
                "data": txn.data, "sequential": txn.sequential,
                "origin_server": txn.origin_server,
                "origin_request": txn.origin_request}

    @staticmethod
    def _txn_from_payload(payload: Dict[str, Any]) -> Transaction:
        return Transaction(zxid=payload["zxid"], op=payload["op"],
                           path=payload["path"], data=payload["data"],
                           sequential=payload["sequential"],
                           origin_server=payload["origin_server"],
                           origin_request=payload["origin_request"])

    def on_zab_proposal(self, message: Message) -> None:
        payload = message.payload
        self.process(self._ack_proposal, payload,
                     service_time_ms=self.config.apply_service_ms)

    def _ack_proposal(self, payload: Dict[str, Any]) -> None:
        txn = self._txn_from_payload(payload)
        self.commit_log.learn(txn)
        # A follower that originated this request must answer its client once
        # the commit applies locally.
        if txn.origin_server == self.name:
            forwarded = self._forwarded.pop(txn.origin_request, None)
            if forwarded is not None:
                self._origin_requests[txn.zxid] = {
                    "client": forwarded["client"],
                    "req_id": forwarded["payload"]["req_id"],
                    "op": forwarded["payload"]["op"],
                }
        self.send(self.leader_name, "zab_ack",
                  {"zxid": txn.zxid, "server": self.name},
                  size_bytes=MESSAGE_HEADER_BYTES + self.config.ack_bytes)

    def on_zab_ack(self, message: Message) -> None:
        payload = message.payload
        assert self.is_leader and self.tracker is not None
        if self.tracker.record_ack(payload["zxid"], payload["server"]):
            self._commit(payload["zxid"])

    def _commit(self, zxid: int) -> None:
        assert self.is_leader and self.tracker is not None
        for follower in self._followers():
            self.send(follower, "zab_commit", {"zxid": zxid},
                      size_bytes=MESSAGE_HEADER_BYTES + self.config.ack_bytes)
        self._learn_commit(zxid)

    def on_zab_commit(self, message: Message) -> None:
        self.process(self._learn_commit, message.payload["zxid"],
                     service_time_ms=self.config.apply_service_ms)

    def _learn_commit(self, zxid: int) -> None:
        self.commit_log.mark_committed(zxid)
        for txn in self.commit_log.ready_transactions():
            result = self._apply(txn)
            self.transactions_applied += 1
            origin = self._origin_requests.pop(txn.zxid, None)
            if origin is not None:
                self._respond(origin["client"], origin["req_id"],
                              ok=result.get("ok", True),
                              result=result.get("result"),
                              error=result.get("error"))

    # -- applying transactions -------------------------------------------------------------
    def _apply(self, txn: Transaction) -> Dict[str, Any]:
        try:
            if txn.op == "create":
                created = self.tree.create(txn.path, txn.data,
                                           sequential=txn.sequential)
                parent_path = txn.path.rsplit("/", 1)[0]
                pending = self._simulated_created.get(parent_path, 0)
                if pending > 0:
                    self._simulated_created[parent_path] = pending - 1
                parent = txn.path.rsplit("/", 1)[0] or "/"
                position = self.tree.child_count(parent) - 1
                return {"ok": True,
                        "result": {"path": created,
                                   "name": created.rsplit("/", 1)[1],
                                   "position": position}}
            if txn.op == "delete":
                self.tree.delete(txn.path)
                self._simulated_removed.discard(txn.path)
                return {"ok": True, "result": {"deleted": txn.path}}
            if txn.op == "set":
                self.tree.set(txn.path, txn.data)
                return {"ok": True, "result": {"path": txn.path}}
            if txn.op == "dequeue":
                children = self.tree.get_children(txn.path)
                if not children:
                    return {"ok": True,
                            "result": {"item": None, "name": None,
                                       "remaining": 0}}
                head = children[0]
                data = self.tree.get(f"{txn.path}/{head}")
                self.tree.delete(f"{txn.path}/{head}")
                self._simulated_removed.discard(f"{txn.path}/{head}")
                return {"ok": True,
                        "result": {"item": data, "name": head,
                                   "remaining": len(children) - 1}}
            return {"ok": False, "error": f"unknown txn op {txn.op!r}"}
        except (NoNodeError, NodeExistsError, ValueError) as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    # -- responses ------------------------------------------------------------------------------
    def _respond(self, client: str, req_id: int, ok: bool,
                 result: Any = None, error: Optional[str] = None,
                 size_bytes: Optional[int] = None) -> None:
        if size_bytes is None:
            size_bytes = (MESSAGE_HEADER_BYTES + self.config.ack_bytes
                          + self.config.element_size_bytes)
        self.send(client, "zk_response",
                  {"req_id": req_id, "ok": ok, "result": result, "error": error},
                  size_bytes=size_bytes)
