"""Two-phase commit coordinator with deterministic election and failover.

A coordinator group is an ordered list of :class:`TwoPhaseCommitCoordinator`
nodes.  The first starts *active*; the rest are standbys that watch its
heartbeats.  When the active coordinator goes silent, standbys take over in
list order (standby rank ``r`` waits ``(1 + r)`` detection timeouts, so the
first surviving standby always wins and the election is deterministic).

A successor recovers by *fencing then reading*: it bumps the group epoch,
probes every participant with ``txn_takeover`` (which both installs the new
epoch — rejecting any in-flight old-epoch traffic — and returns the
participant's log), and drives every in-flight transaction to a consistent
outcome:

* any participant holds a **commit** record → the transaction was decided
  (and possibly acked to the client); re-drive the commit with the original
  timestamp to every participant;
* a transaction only **prepared** everywhere it is known → abort, but only
  after *every* participant of that transaction has answered a probe (the
  classic blocking rule: a silent participant might hold the one commit
  record that proves the old coordinator acked the client).

The coordinator acks a commit to the client only after the first
participant's commit ack — i.e. only once at least one durable commit
record exists — which is the invariant that makes "no lost acked commits"
hold through a mid-commit crash.

In-memory coordinator state (``in_flight``, ``decided``, delivery
bookkeeping) is volatile: :meth:`recover` clears it, modelling a restart
from nothing but the participants' logs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.sim.network import MESSAGE_HEADER_BYTES, Message, Network
from repro.sim.node import Node
from repro.txn.config import TxnConfig
from repro.txn.log import TxnState

#: ``owners_of(key) -> participant names`` — the routing oracle the fabric
#: builds from the cluster's partitioner.
OwnersFn = Callable[[str], Sequence[str]]

COMMIT = "commit"
ABORT = "abort"


@dataclass
class _InFlight:
    """Coordinator-side state of one transaction between begin and decision."""

    txn_id: str
    writes: Dict[str, Any]
    client: str
    deadline_ms: float
    participants: Tuple[str, ...]
    per_participant: Dict[str, Dict[str, Any]]
    started_ms: float
    votes: Dict[str, bool] = field(default_factory=dict)
    decision: Optional[str] = None
    timeout_event: Optional[Any] = None
    prepared_notice_sent: bool = False


@dataclass
class _Delivery:
    """Decision redelivery state: who still owes an ack."""

    txn_id: str
    outcome: str
    timestamp: Optional[Tuple[float, str, int]]
    unacked: Set[str]
    client: str
    client_acked: bool = False


class TwoPhaseCommitCoordinator(Node):
    """One member of the coordinator group (active or standby)."""

    def __init__(self, name: str, region: str, network: Network,
                 config: TxnConfig, index: int, peers: Sequence[str],
                 participants: Sequence[str], owners_of: OwnersFn) -> None:
        super().__init__(name, region, network,
                         service_time_ms=config.coordinator_service_ms)
        self.config = config
        self.index = index
        self.peers: Tuple[str, ...] = tuple(peers)
        self.participants: Tuple[str, ...] = tuple(sorted(participants))
        self.owners_of = owners_of
        # Group membership/epoch knowledge.
        self.active = index == 0
        self.epoch = 1
        self.known_epoch = 1
        self.active_name = self.peers[0] if self.peers else name
        self._last_heard_ms = 0.0
        # Volatile transaction state (cleared on crash recovery).
        self.in_flight: Dict[str, _InFlight] = {}
        self.decided: Dict[str, Tuple[str, Optional[Tuple[float, str, int]]]] = {}
        self._deliveries: Dict[str, _Delivery] = {}
        self._seq = itertools.count(1)
        # Takeover recovery state.
        self.recovering = False
        self._takeover_pending: Set[str] = set()
        self._takeover_replied: Set[str] = set()
        self._in_doubt: Dict[str, Dict[str, Any]] = {}
        self.recovery_started_ms: Optional[float] = None
        self.recovery_completed_ms: Optional[float] = None
        # Instrumentation.
        self.txns_started = 0
        self.commits = 0
        self.aborts = 0
        self.prepare_timeouts = 0
        self.takeovers = 0
        self.redirects = 0
        self.decision_redeliveries = 0
        self.heartbeats_sent = 0
        # Timer management.
        self._hb_armed = False
        self._retry_armed = False
        self._probe_armed = False
        if config.heartbeat_interval_ms > 0:
            self._arm_heartbeat()

    # -- lifecycle -----------------------------------------------------------
    def recover(self) -> None:
        """Restart after a crash: volatile state is gone, rejoin as standby."""
        super().recover()
        for state in self.in_flight.values():
            if state.timeout_event is not None:
                state.timeout_event.cancel()
        self.in_flight.clear()
        self.decided.clear()
        self._deliveries.clear()
        self.active = False
        self.recovering = False
        self._takeover_pending.clear()
        self._takeover_replied.clear()
        self._in_doubt.clear()
        # Grace period: trust whoever is active now until proven silent.
        self._last_heard_ms = self.scheduler.now()
        if self.config.heartbeat_interval_ms > 0 and not self._hb_armed:
            self._arm_heartbeat()

    def _deactivate(self) -> None:
        """A higher epoch exists: stop acting as the active coordinator."""
        self.active = False
        self.recovering = False
        for state in self.in_flight.values():
            if state.timeout_event is not None:
                state.timeout_event.cancel()
        self.in_flight.clear()
        self._deliveries.clear()
        self._takeover_pending.clear()

    # -- heartbeats & election ----------------------------------------------
    def _arm_heartbeat(self) -> None:
        self._hb_armed = True
        self.scheduler.schedule(self.config.heartbeat_interval_ms,
                                self._heartbeat_tick)

    def _heartbeat_tick(self) -> None:
        if not self.alive:
            self._hb_armed = False
            return
        if self.active:
            self._broadcast_heartbeat()
        else:
            self._check_active_liveness()
        self.scheduler.schedule(self.config.heartbeat_interval_ms,
                                self._heartbeat_tick)

    def _broadcast_heartbeat(self) -> None:
        for peer in self.peers:
            if peer != self.name:
                self.send(peer, "coord_heartbeat",
                          {"name": self.name, "epoch": self.epoch},
                          size_bytes=MESSAGE_HEADER_BYTES + 16)
        self.heartbeats_sent += 1

    def on_coord_heartbeat(self, message: Message) -> None:
        payload = message.payload
        if payload["epoch"] < self.known_epoch:
            return
        if payload["epoch"] > self.known_epoch or not self.active:
            if self.active and payload["epoch"] > self.epoch:
                self._deactivate()
            self.known_epoch = payload["epoch"]
            self.active_name = payload["name"]
        self._last_heard_ms = self.scheduler.now()

    def _standby_rank(self) -> int:
        """Position among the standbys, in group order (0 = next in line)."""
        rank = 0
        for peer in self.peers:
            if peer == self.name:
                return rank
            if peer != self.active_name:
                rank += 1
        return rank

    def _check_active_liveness(self) -> None:
        silence = self.scheduler.now() - self._last_heard_ms
        threshold = self.config.coordinator_timeout_ms * (1 + self._standby_rank())
        if silence > threshold:
            self._take_over()

    def _take_over(self) -> None:
        """Become active: fence the old epoch and recover from participant logs."""
        self.active = True
        self.epoch = self.known_epoch + 1
        self.known_epoch = self.epoch
        self.active_name = self.name
        self.takeovers += 1
        self.recovering = True
        self.recovery_started_ms = self.scheduler.now()
        self.recovery_completed_ms = None
        self._takeover_pending = set(self.participants)
        self._takeover_replied = set()
        self._in_doubt = {}
        self._broadcast_heartbeat()
        for participant in self.participants:
            self._send_takeover_probe(participant)
        if not self._probe_armed:
            self._probe_armed = True
            self.scheduler.schedule(self.config.takeover_probe_ms,
                                    self._probe_tick)
        if not self._takeover_pending:
            self._finish_recovery_if_done()

    def _send_takeover_probe(self, participant: str) -> None:
        self.send(participant, "txn_takeover",
                  {"epoch": self.epoch, "coordinator": self.name},
                  size_bytes=MESSAGE_HEADER_BYTES + 16)

    def _probe_tick(self) -> None:
        if not self.alive or not self.active or not self.recovering:
            self._probe_armed = False
            return
        for participant in sorted(self._takeover_pending):
            self._send_takeover_probe(participant)
        self.scheduler.schedule(self.config.takeover_probe_ms,
                                self._probe_tick)

    def on_txn_takeover_ack(self, message: Message) -> None:
        payload = message.payload
        if payload["epoch"] > self.epoch:
            if self.active:
                self._deactivate()
            return
        if not self.active or not self.recovering \
                or payload["epoch"] < self.epoch:
            return
        participant = payload["participant"]
        self._takeover_pending.discard(participant)
        self._takeover_replied.add(participant)
        for record in payload["records"]:
            self._merge_recovered_record(record)
        self._resolve_in_doubt()

    def _merge_recovered_record(self, record: Dict[str, Any]) -> None:
        txn_id = record["txn_id"]
        state = record["state"]
        if state == TxnState.COMMITTED:
            self.decided[txn_id] = (COMMIT, tuple(record["timestamp"]))
            self._in_doubt.pop(txn_id, None)
            self._ensure_recovery_delivery(txn_id, record)
        elif state == TxnState.ABORTED:
            self.decided.setdefault(txn_id, (ABORT, None))
            self._in_doubt.pop(txn_id, None)
            if record["participants"]:
                self._ensure_recovery_delivery(txn_id, record)
        elif state == TxnState.PREPARED:
            if txn_id in self.decided:
                # The outcome is already known from another participant's
                # record: make sure this still-prepared participant gets it.
                self._ensure_recovery_delivery(txn_id, record)
            else:
                self._in_doubt[txn_id] = {
                    "participants": tuple(record["participants"]),
                    "client": record["client"],
                }

    def _ensure_recovery_delivery(self, txn_id: str,
                                  record: Dict[str, Any]) -> None:
        """Re-drive a recovered decision to the transaction's participants."""
        outcome, timestamp = self.decided[txn_id]
        self._start_delivery(txn_id, outcome, timestamp,
                             tuple(record["participants"]),
                             record["client"], notify_client_on_abort=True)

    def _resolve_in_doubt(self) -> None:
        for txn_id in sorted(self._in_doubt):
            info = self._in_doubt[txn_id]
            decided = self.decided.get(txn_id)
            if decided is not None:
                outcome, timestamp = decided
            elif set(info["participants"]) <= self._takeover_replied:
                # Every participant answered and none holds a commit record:
                # the old coordinator cannot have acked this transaction
                # (acks require a durable commit record), so presumed abort
                # is safe.  Until then the transaction blocks — a silent
                # participant may hold the proving record.
                outcome, timestamp = ABORT, None
                self.decided[txn_id] = (ABORT, None)
                self.aborts += 1
            else:
                continue
            del self._in_doubt[txn_id]
            self._start_delivery(txn_id, outcome, timestamp,
                                 info["participants"], info["client"],
                                 notify_client_on_abort=True)
        self._finish_recovery_if_done()

    def _finish_recovery_if_done(self) -> None:
        if self.recovering and not self._takeover_pending \
                and not self._in_doubt:
            self.recovering = False
            self.recovery_completed_ms = self.scheduler.now()

    # -- transaction intake --------------------------------------------------
    def on_txn_begin(self, message: Message) -> None:
        payload = message.payload
        txn_id = payload["txn_id"]
        if not self.active:
            self.redirects += 1
            self.send(message.src, "txn_redirect",
                      {"txn_id": txn_id, "active": self.active_name},
                      size_bytes=MESSAGE_HEADER_BYTES + 32)
            return
        decided = self.decided.get(txn_id)
        if decided is not None:
            self._send_client_final(message.src, txn_id, decided[0],
                                    decided[1])
            return
        if txn_id in self.in_flight or txn_id in self._in_doubt:
            # Duplicate submission of a transaction still being worked on:
            # remember the (possibly new) reply-to and let it run.
            if txn_id in self.in_flight:
                self.in_flight[txn_id].client = payload["client"]
            return
        writes: Dict[str, Any] = payload["writes"]
        members: Set[str] = set()
        per_participant: Dict[str, Dict[str, Any]] = {}
        for key in sorted(writes):
            for owner in self.owners_of(key):
                members.add(owner)
                per_participant.setdefault(owner, {})[key] = writes[key]
        state = _InFlight(
            txn_id=txn_id, writes=dict(writes), client=payload["client"],
            deadline_ms=payload.get("deadline_ms", float("inf")),
            participants=tuple(sorted(members)),
            per_participant=per_participant,
            started_ms=self.scheduler.now())
        self.in_flight[txn_id] = state
        self.txns_started += 1
        self.process(self._send_prepares, txn_id)

    def _send_prepares(self, txn_id: str) -> None:
        if not self.alive or not self.active:
            return
        state = self.in_flight.get(txn_id)
        if state is None or state.decision is not None:
            return
        for participant in state.participants:
            writes = state.per_participant[participant]
            size = MESSAGE_HEADER_BYTES + sum(
                self.config.key_size_bytes + self.config.value_size_bytes
                for _ in writes)
            self.send(participant, "txn_prepare", {
                "txn_id": txn_id,
                "epoch": self.epoch,
                "writes": writes,
                "participants": list(state.participants),
                "client": state.client,
                "deadline_ms": state.deadline_ms,
            }, size_bytes=size)
        now = self.scheduler.now()
        timeout = min(self.config.prepare_timeout_ms,
                      max(0.0, state.deadline_ms - now))
        state.timeout_event = self.scheduler.schedule(
            timeout, self._on_prepare_timeout, txn_id)

    def _on_prepare_timeout(self, txn_id: str) -> None:
        if not self.alive or not self.active:
            return
        state = self.in_flight.get(txn_id)
        if state is None or state.decision is not None:
            return
        state.timeout_event = None
        self.prepare_timeouts += 1
        self._decide(txn_id, ABORT)

    # -- votes & decision ----------------------------------------------------
    def on_txn_vote(self, message: Message) -> None:
        payload = message.payload
        if payload["epoch"] > self.epoch:
            if self.active:
                self._deactivate()
            return
        if not self.active or payload["epoch"] < self.epoch:
            return
        state = self.in_flight.get(payload["txn_id"])
        if state is None or state.decision is not None:
            return
        state.votes[payload["participant"]] = payload["vote"]
        if not payload["vote"]:
            self._decide(state.txn_id, ABORT)
            return
        if all(state.votes.get(p) for p in state.participants):
            # Every participant voted yes: emit the speculative PREPARED
            # view immediately, then make the decision durable (a crash in
            # that window is what invalidates the speculation).
            if not state.prepared_notice_sent:
                state.prepared_notice_sent = True
                self.send(state.client, "txn_prepared_notice",
                          {"txn_id": state.txn_id},
                          size_bytes=MESSAGE_HEADER_BYTES + 16)
                self.process(self._finalize_commit, state.txn_id,
                             service_time_ms=self.config.decision_log_ms)

    def _finalize_commit(self, txn_id: str) -> None:
        if not self.alive or not self.active:
            return
        state = self.in_flight.get(txn_id)
        if state is None or state.decision is not None:
            return
        timestamp = (self.scheduler.now(), self.name, next(self._seq))
        self._decide(txn_id, COMMIT, timestamp)

    def _decide(self, txn_id: str, outcome: str,
                timestamp: Optional[Tuple[float, str, int]] = None) -> None:
        state = self.in_flight.pop(txn_id)
        state.decision = outcome
        if state.timeout_event is not None:
            state.timeout_event.cancel()
            state.timeout_event = None
        self.decided[txn_id] = (outcome, timestamp)
        if outcome == COMMIT:
            self.commits += 1
        else:
            self.aborts += 1
        self._start_delivery(txn_id, outcome, timestamp, state.participants,
                             state.client, notify_client_on_abort=True)

    def _start_delivery(self, txn_id: str, outcome: str,
                        timestamp: Optional[Tuple[float, str, int]],
                        participants: Sequence[str], client: str,
                        notify_client_on_abort: bool) -> None:
        existing = self._deliveries.get(txn_id)
        if existing is not None:
            # Widen an in-progress delivery (recovery can learn membership
            # incrementally); re-acks from already-settled participants are
            # idempotent.
            existing.unacked |= set(participants)
            self._send_decision(existing)
            return
        delivery = _Delivery(txn_id=txn_id, outcome=outcome,
                             timestamp=timestamp,
                             unacked=set(participants), client=client)
        if outcome == ABORT:
            # Aborts carry no durability requirement: tell the client now.
            if notify_client_on_abort and client:
                self._send_client_final(client, txn_id, ABORT, None)
            delivery.client_acked = True
        self._deliveries[txn_id] = delivery
        self._send_decision(delivery)
        if not self._retry_armed:
            self._retry_armed = True
            self.scheduler.schedule(self.config.decision_retry_ms,
                                    self._decision_retry_tick)

    def _send_decision(self, delivery: _Delivery) -> None:
        kind = "txn_commit" if delivery.outcome == COMMIT else "txn_abort"
        payload: Dict[str, Any] = {"txn_id": delivery.txn_id,
                                   "epoch": self.epoch}
        if delivery.outcome == COMMIT:
            payload["timestamp"] = list(delivery.timestamp)
        for participant in sorted(delivery.unacked):
            self.send(participant, kind, dict(payload),
                      size_bytes=MESSAGE_HEADER_BYTES + 48)

    def _decision_retry_tick(self) -> None:
        if not self.alive or not self.active or not self._deliveries:
            self._retry_armed = False
            return
        for txn_id in sorted(self._deliveries):
            delivery = self._deliveries[txn_id]
            if delivery.unacked:
                self.decision_redeliveries += 1
                self._send_decision(delivery)
        self.scheduler.schedule(self.config.decision_retry_ms,
                                self._decision_retry_tick)

    def on_txn_commit_ack(self, message: Message) -> None:
        payload = message.payload
        delivery = self._deliveries.get(payload["txn_id"])
        if delivery is None:
            return
        delivery.unacked.discard(payload["participant"])
        if delivery.outcome == COMMIT and not delivery.client_acked:
            # First durable commit record in place: the outcome can no
            # longer be lost, so the client may be told it committed.
            delivery.client_acked = True
            if delivery.client:
                self._send_client_final(delivery.client, delivery.txn_id,
                                        COMMIT, delivery.timestamp)
        if not delivery.unacked:
            del self._deliveries[delivery.txn_id]

    def on_txn_abort_ack(self, message: Message) -> None:
        payload = message.payload
        delivery = self._deliveries.get(payload["txn_id"])
        if delivery is None:
            return
        delivery.unacked.discard(payload["participant"])
        if not delivery.unacked:
            del self._deliveries[delivery.txn_id]

    def _send_client_final(self, client: str, txn_id: str, outcome: str,
                           timestamp: Optional[Tuple[float, str, int]]) -> None:
        self.send(client, "txn_final", {
            "txn_id": txn_id,
            "outcome": outcome,
            "timestamp": list(timestamp) if timestamp else None,
        }, size_bytes=MESSAGE_HEADER_BYTES + 48)

    # -- introspection -------------------------------------------------------
    def time_to_recover_ms(self) -> Optional[float]:
        """Takeover duration (probe start → every in-doubt txn resolved)."""
        if self.recovery_started_ms is None \
                or self.recovery_completed_ms is None:
            return None
        return self.recovery_completed_ms - self.recovery_started_ms

    def in_doubt_txns(self) -> List[str]:
        return sorted(self._in_doubt)
