"""Admission-control accounting for open-loop load generation.

A closed-loop client can never overload the store — it only issues after the
previous operation completes.  An open-loop generator offers load at a rate
the store does not control, so three new quantities appear that the latency
recorders alone cannot express:

* **offered vs admitted vs shed** — how many arrivals the admission
  controller let through, queued, or dropped;
* **queue delay** — the time an admitted operation waited between arriving
  and being issued to the store (the component of user-observed latency
  that explodes at saturation);
* **in-flight / queue high-water marks** — how hard the bounded-concurrency
  limit and the wait queue were actually pushed.

:class:`AdmissionStats` collects all of it.  Whole-run counters (``offered``,
``admitted``, ``shed``) cover warm-up and cool-down too; the ``measured_*``
counters only cover arrivals inside the measurement window.  The queue-delay
recorder receives one sample per *measured completion* (recorded by
:meth:`repro.workloads.engine.LoadEngine.record_completion`, under exactly
the same arrived-in-window / completed-in-window predicate as the latency
recorders), so queue-delay and latency statistics always describe the same
population of operations — a tail that queued past the window's end is
censored from both, never from just one.
"""

from __future__ import annotations

from typing import Any, Dict, Union

from repro.metrics.latency import HistogramRecorder, LatencyRecorder

Recorder = Union[LatencyRecorder, HistogramRecorder]


class AdmissionStats:
    """Offered-load, shedding, and queue-delay accounting for one run."""

    def __init__(self, use_histograms: bool = False) -> None:
        #: Arrivals the generator produced (whole run).
        self.offered = 0
        #: Arrivals issued to the store, immediately or after queueing.
        self.admitted = 0
        #: Arrivals dropped by the admission policy (whole run).
        self.shed = 0
        #: Arrivals inside the measurement window.
        self.measured_offered = 0
        #: Arrivals inside the measurement window that were shed.
        self.measured_shed = 0
        #: Time admitted operations spent waiting for an in-flight slot
        #: (0 for operations issued on arrival); one sample per measured
        #: completion — the same population the latency recorders cover.
        self.queue_delay: Recorder = (HistogramRecorder()
                                      if use_histograms else LatencyRecorder())
        #: Most operations concurrently in flight at any instant.
        self.in_flight_high_water = 0
        #: Deepest the admission queue ever got.
        self.queue_high_water = 0

    # -- recording ---------------------------------------------------------
    def record_arrival(self, measured: bool) -> None:
        self.offered += 1
        if measured:
            self.measured_offered += 1

    def record_shed(self, measured: bool) -> None:
        self.shed += 1
        if measured:
            self.measured_shed += 1

    def record_issue(self, in_flight: int) -> None:
        self.admitted += 1
        if in_flight > self.in_flight_high_water:
            self.in_flight_high_water = in_flight

    def record_queue_delay(self, queue_delay_ms: float) -> None:
        """One sample per measured completion (see the class docstring)."""
        self.queue_delay.record(queue_delay_ms)

    def record_queue_depth(self, depth: int) -> None:
        if depth > self.queue_high_water:
            self.queue_high_water = depth

    # -- summaries ---------------------------------------------------------
    def shed_percent(self) -> float:
        """Share of measured arrivals dropped by admission control."""
        if self.measured_offered == 0:
            return 0.0
        return 100.0 * self.measured_shed / self.measured_offered

    def summary(self) -> Dict[str, Any]:
        return {
            "offered_ops": self.measured_offered,
            "shed_ops": self.measured_shed,
            "shed_pct": self.shed_percent(),
            "queue_delay_mean_ms": self.queue_delay.mean(),
            "queue_delay_p99_ms": self.queue_delay.p99(),
            "in_flight_high_water": self.in_flight_high_water,
            "queue_high_water": self.queue_high_water,
        }
