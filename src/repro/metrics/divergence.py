"""Divergence accounting: how often preliminary views disagree with final ones.

Figure 7 measures the fraction of ICG reads whose preliminary (weak) value
differs from the final (strong) one — the misspeculation rate applications
speculating on preliminary views would observe.
"""

from __future__ import annotations

from typing import Any


class DivergenceCounter:
    """Counts matched / diverged preliminary-final pairs."""

    def __init__(self) -> None:
        self.matched = 0
        self.diverged = 0
        #: Operations where no preliminary view arrived before the final one.
        self.missing_preliminary = 0

    def record(self, preliminary: Any, final: Any,
               had_preliminary: bool = True) -> bool:
        """Record one ICG operation; returns True when the views diverged."""
        if not had_preliminary:
            self.missing_preliminary += 1
            return False
        return self.record_outcome(preliminary != final)

    def record_outcome(self, diverged: bool,
                       had_preliminary: bool = True) -> bool:
        """Record an already-compared operation outcome."""
        if not had_preliminary:
            self.missing_preliminary += 1
            return False
        if diverged:
            self.diverged += 1
            return True
        self.matched += 1
        return False

    @property
    def total(self) -> int:
        return self.matched + self.diverged

    def divergence_rate(self) -> float:
        """Fraction of compared operations whose views differed (0..1)."""
        if self.total == 0:
            return 0.0
        return self.diverged / self.total

    def divergence_percent(self) -> float:
        return 100.0 * self.divergence_rate()

    def merge(self, other: "DivergenceCounter") -> None:
        self.matched += other.matched
        self.diverged += other.diverged
        self.missing_preliminary += other.missing_preliminary
