"""Determinism regression tests guarding the simulator fast path.

The golden fingerprints in ``data/determinism_golden.json`` were recorded on
the pre-optimization simulator core: they hash the exact event execution
order of a closed-loop run and the rendered figure reports for fixed seeds.
Any rewrite of the scheduler/network/metrics hot path must keep every hash
bit-identical — same events in the same order, same figure numbers.

Regenerate only when *intentionally* changing simulation behaviour::

    PYTHONPATH=src python tests/bench/test_determinism.py --regenerate
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Dict, Iterable

import pytest

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "determinism_golden.json"


def _sha(parts: Iterable) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def trace_fingerprint(batch_dispatch: bool = True) -> Dict[str, object]:
    """Event-trace + metrics fingerprint of a small closed-loop CC2 run.

    ``batch_dispatch=False`` forces every delivery onto an individual heap
    entry; the fingerprint must be identical either way (batching is an
    amortization of heap traffic, never a reordering).
    """
    from repro.bench.common import (
        build_cassandra_scenario, cassandra_config_for, run_multi_region_load)
    from repro.sim.topology import Region
    from repro.workloads.ycsb import workload_by_name

    scenario = build_cassandra_scenario(
        seed=11, record_count=60,
        client_regions=(Region.IRL, Region.FRK),
        config=cassandra_config_for("CC2"))
    scenario.env.scheduler.batch_dispatch = batch_dispatch
    trace = scenario.env.scheduler.start_trace()
    results = run_multi_region_load(
        scenario, "CC2", workload_by_name("A"), threads_per_client=2,
        duration_ms=2_500.0, warmup_ms=500.0, cooldown_ms=250.0, seed=11)
    summaries = [results[region].summary() for region in sorted(results)]
    return {
        "events": scenario.env.scheduler.events_executed,
        "messages": scenario.env.network.messages_sent,
        "total_bytes": scenario.env.network.total_bytes(),
        "trace_sha256": _sha(trace),
        "summary_sha256": _sha(summaries),
    }


def figure_fingerprints(jobs: int = 1) -> Dict[str, str]:
    """Hashes of the rendered quick-scale figure reports (fixed seeds).

    ``jobs`` routes the regeneration through the parallel sweep executor;
    the hashes must be identical at any job count (the sweep engine merges
    worker records in grid order).
    """
    from repro.bench.cli import run_figure

    return {name: _sha([run_figure(name, quick=True, jobs=jobs)])
            for name in ("fig06", "fig09", "fig14", "fig15", "fig16")}


def _golden() -> Dict:
    if not GOLDEN_PATH.exists():
        pytest.fail(f"golden file missing: {GOLDEN_PATH}; regenerate with "
                    f"'python {__file__} --regenerate'")
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


class TestDeterminism:
    def test_event_trace_matches_golden(self):
        assert trace_fingerprint() == _golden()["trace"]

    def test_event_trace_matches_golden_with_batching_off(self):
        """Per-entry dispatch reproduces the batched trace bit for bit."""
        assert trace_fingerprint(batch_dispatch=False) == _golden()["trace"]

    def test_event_trace_is_repeatable(self):
        assert trace_fingerprint() == trace_fingerprint()

    def test_pools_recycle_without_leaking(self):
        """Every pooled object acquired during a run goes back to its pool.

        Runs with the network pool's debug assertions armed (they fire on
        recycling a still-referenced message or double-recycling), then
        checks the counters: shells are actually reused, the free list only
        ever holds created shells, and no ICG per-op record stays
        outstanding once the run drains.
        """
        from repro.bench.common import (
            _IcgReadOp, build_cassandra_scenario, cassandra_config_for,
            run_multi_region_load)
        from repro.sim.topology import Region
        from repro.workloads.ycsb import workload_by_name

        icg_before = _IcgReadOp.pool_stats()
        outstanding_before = icg_before["created"] - icg_before["free"]
        scenario = build_cassandra_scenario(
            seed=11, record_count=60, client_regions=(Region.IRL,),
            config=cassandra_config_for("CC2"))
        network = scenario.env.network
        network.pool_debug = True
        run_multi_region_load(
            scenario, "CC2", workload_by_name("A"), threads_per_client=2,
            duration_ms=2_000.0, warmup_ms=250.0, cooldown_ms=250.0, seed=11)
        stats = network.pool_stats()
        assert stats["reused"] > 0, "message pool never recycled a shell"
        assert stats["free"] <= stats["created"]
        assert stats["recycled"] >= stats["reused"]
        icg_after = _IcgReadOp.pool_stats()
        assert icg_after["created"] - icg_after["free"] == \
            outstanding_before, "an ICG per-op record leaked"

    @pytest.mark.slow
    def test_quick_figures_match_golden(self):
        assert figure_fingerprints() == _golden()["figures"]

    @pytest.mark.slow
    def test_quick_figures_match_golden_with_parallel_sweep(self):
        """--jobs 2 must reproduce the committed serial golden hashes."""
        assert figure_fingerprints(jobs=2) == _golden()["figures"]


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        raise SystemExit(f"usage: python {sys.argv[0]} --regenerate")
    golden = {"trace": trace_fingerprint(), "figures": figure_fingerprints()}
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2) + "\n",
                           encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")
    print(json.dumps(golden, indent=2))
