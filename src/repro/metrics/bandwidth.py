"""Bandwidth probes over the simulated network.

Figures 8 and 10 report *client-replica* bytes per operation.  A
:class:`BandwidthProbe` snapshots the byte counters on the links between a
set of client nodes and a set of server nodes, so the harness can scope
measurements to its steady-state window and divide by the number of
completed operations.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.sim.network import Network


class BandwidthProbe:
    """Measures traffic between two groups of nodes over a window."""

    def __init__(self, network: Network, client_names: Iterable[str],
                 server_names: Iterable[str]) -> None:
        self.network = network
        self.client_names = list(client_names)
        self.server_names = list(server_names)
        self._start_bytes: Optional[int] = None
        self._stop_bytes: Optional[int] = None

    def _current_bytes(self) -> int:
        total = 0
        for client in self.client_names:
            for server in self.server_names:
                total += self.network.bytes_between(client, server)
        return total

    def start(self) -> None:
        """Begin the measurement window."""
        self._start_bytes = self._current_bytes()
        self._stop_bytes = None

    def stop(self) -> None:
        """End the measurement window."""
        if self._start_bytes is None:
            raise RuntimeError("probe was never started")
        self._stop_bytes = self._current_bytes()

    def bytes_transferred(self) -> int:
        """Bytes exchanged during the window (stop() implied if still open)."""
        if self._start_bytes is None:
            raise RuntimeError("probe was never started")
        end = self._stop_bytes if self._stop_bytes is not None else self._current_bytes()
        return end - self._start_bytes

    def kilobytes_per_op(self, operations: int) -> float:
        """Average kB transferred per completed operation in the window."""
        if operations <= 0:
            return 0.0
        return self.bytes_transferred() / operations / 1000.0
