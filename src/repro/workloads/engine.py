"""Shared load-generation machinery (the ``LoadEngine`` base).

Both load generators in :mod:`repro.workloads.runner` — the closed-loop
runner the paper's experiments use and the open-loop runner the saturation
experiments use — share everything except *when the next operation starts*:

* issuing one operation through a system-agnostic ``issue`` function and
  receiving its completion information through a ``done`` callback;
* warm-up / cool-down windows excluded from measurement;
* arming an optional fault script relative to the run's start time, so
  fault schedules compose identically with either loop shape;
* latency / divergence / degraded-or-failed accounting into a
  :class:`RunResult` (exact recorders by default, O(1) histograms for perf
  runs at scale).

:class:`LoadEngine` owns all of that; subclasses only implement
:meth:`LoadEngine._start_load` (closed loop: start N client threads; open
loop: schedule the first arrival).  The completion-recording path is kept
bit-for-bit identical to the pre-refactor ``ClosedLoopRunner`` so every
committed figure table is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.metrics.divergence import DivergenceCounter
from repro.metrics.latency import HistogramRecorder, LatencyRecorder
from repro.metrics.queueing import AdmissionStats
from repro.sim.scheduler import Scheduler

#: ``issue(op_type, key, value, done)`` executes one operation and eventually
#: calls ``done(info)`` where ``info`` may contain:
#:   ``final_latency_ms``          overall completion latency,
#:   ``preliminary_latency_ms``    latency of the preliminary view (if any),
#:   ``diverged``                  True when preliminary != final,
#:   ``had_preliminary``           False when no preliminary view arrived,
#:   ``degraded``                  True when the storage answered with less
#:                                 than the requested quorum (fault recovery),
#:   ``failed``                    True when the operation errored out.
IssueFunction = Callable[[str, str, Optional[str], Callable[[Dict[str, Any]], None]], None]


@dataclass
class RunResult:
    """Aggregated metrics for one load-run configuration."""

    label: str
    duration_ms: float
    measured_ops: int = 0
    total_ops: int = 0
    final_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    preliminary_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    read_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    update_latency: LatencyRecorder = field(default_factory=LatencyRecorder)
    divergence: DivergenceCounter = field(default_factory=DivergenceCounter)
    #: Operations answered with less than the requested quorum (whole run).
    degraded_ops: int = 0
    #: Operations that errored out, e.g. exhausted timeouts (whole run).
    failed_ops: int = 0
    #: Offered-load accounting (open-loop runs only; None for closed loops).
    admission: Optional[AdmissionStats] = None

    def throughput_ops_per_sec(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return self.measured_ops / (self.duration_ms / 1000.0)

    def offered_ops_per_sec(self) -> float:
        """Measured offered load (open loop); falls back to throughput."""
        if self.admission is None or self.duration_ms <= 0:
            return self.throughput_ops_per_sec()
        return self.admission.measured_offered / (self.duration_ms / 1000.0)

    def summary(self) -> Dict[str, Any]:
        summary = {
            "label": self.label,
            "throughput_ops_s": self.throughput_ops_per_sec(),
            "final_mean_ms": self.final_latency.mean(),
            "final_p99_ms": self.final_latency.p99(),
            "preliminary_mean_ms": self.preliminary_latency.mean(),
            "preliminary_p99_ms": self.preliminary_latency.p99(),
            "divergence_pct": self.divergence.divergence_percent(),
            "measured_ops": self.measured_ops,
            "degraded_ops": self.degraded_ops,
            "failed_ops": self.failed_ops,
        }
        if self.admission is not None:
            summary.update(self.admission.summary())
            summary["offered_ops_s"] = self.offered_ops_per_sec()
        return summary


class LoadEngine:
    """Base class for load generators running over simulated time.

    Owns the measurement windows, fault arming, and completion accounting;
    a subclass decides how operations are scheduled by implementing
    :meth:`_start_load` (called once the run's time windows are fixed).
    """

    def __init__(self, scheduler: Scheduler, issue: IssueFunction,
                 duration_ms: float = 30_000.0, warmup_ms: float = 5_000.0,
                 cooldown_ms: float = 5_000.0, label: str = "run",
                 faults: Optional[Any] = None,
                 use_histograms: bool = False,
                 admission: Optional[AdmissionStats] = None,
                 drain_ms: float = 60_000.0) -> None:
        if duration_ms <= warmup_ms + cooldown_ms:
            raise ValueError("duration must exceed warmup + cooldown")
        self.scheduler = scheduler
        self.issue = issue
        self.duration_ms = duration_ms
        self.warmup_ms = warmup_ms
        self.cooldown_ms = cooldown_ms
        self.label = label
        #: A :class:`repro.faults.FaultInjector` (or anything with ``arm``):
        #: its schedule is armed relative to the run's start time, so fault
        #: scripts compose with warm-up windows the same way on every run —
        #: and identically for closed- and open-loop arrival shapes.
        self.faults = faults
        #: Slack after ``end_time`` so in-flight operations drain.
        self.drain_ms = drain_ms
        self.start_time = 0.0
        self.end_time = 0.0
        self._measure_start = 0.0
        self._measure_end = 0.0
        measured_ms = duration_ms - warmup_ms - cooldown_ms
        if use_histograms:
            # O(1)-per-sample recorders for perf runs at scale; the figure
            # harnesses keep the default exact recorders so committed tables
            # stay bit-identical.
            self.result = RunResult(
                label=label, duration_ms=measured_ms,
                final_latency=HistogramRecorder(),
                preliminary_latency=HistogramRecorder(),
                read_latency=HistogramRecorder(),
                update_latency=HistogramRecorder(),
                admission=admission)
        else:
            self.result = RunResult(
                label=label, duration_ms=measured_ms, admission=admission)

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Fix the time windows and start the load; the caller then runs
        the scheduler."""
        self.start_time = self.scheduler.now()
        self.end_time = self.start_time + self.duration_ms
        self._measure_start = self.start_time + self.warmup_ms
        self._measure_end = self.end_time - self.cooldown_ms
        if self.faults is not None:
            self.faults.arm(offset_ms=self.start_time)
        self._start_load()

    def _start_load(self) -> None:
        """Schedule the subclass's first operation(s)."""
        raise NotImplementedError

    def run(self) -> RunResult:
        """Start the load, run the simulation past the end, return metrics."""
        self.start()
        # Allow some slack after end_time so in-flight operations drain.
        self.scheduler.run(until=self.end_time + self.drain_ms)
        return self.result

    def in_measurement_window(self, at_ms: float) -> bool:
        """Whether an instant falls inside the measured (post-warm-up,
        pre-cool-down) window."""
        return self._measure_start <= at_ms <= self._measure_end

    # -- recording -----------------------------------------------------------------
    def record_completion(self, op_type: str, issued_at: float,
                          info: Dict[str, Any],
                          arrived_at: Optional[float] = None) -> None:
        """Account one completed operation.

        ``issued_at`` is when the operation reached the storage; for open
        loops ``arrived_at`` is the (earlier) instant the user showed up, so
        recorded latencies are the response times the *user* observes
        (queue delay + service time) and the measurement window is judged
        against the true arrival instant — the same instant the admission
        counters classified, with no float round-trip in between.  Closed
        loops omit it (arrival == issue) and the accounting reduces exactly
        to the original closed-loop behaviour.
        """
        self.result.total_ops += 1
        # Fault outcomes are counted over the whole run (not only the
        # measurement window): a fault script may overlap warm-up/cool-down
        # and recovery behaviour is interesting wherever it happens.
        if info.get("degraded"):
            self.result.degraded_ops += 1
        if info.get("failed"):
            self.result.failed_ops += 1
        completed_at = self.scheduler.now()
        if arrived_at is None:
            arrived_at = issued_at
        queue_delay_ms = issued_at - arrived_at
        if not (self._measure_start <= arrived_at and
                completed_at <= self._measure_end):
            return
        self.result.measured_ops += 1
        if self.result.admission is not None:
            # One queue-delay sample per measured completion, so queue-delay
            # and latency statistics describe the same operations.
            self.result.admission.record_queue_delay(queue_delay_ms)
        final_latency = info.get("final_latency_ms",
                                 completed_at - issued_at)
        if queue_delay_ms:
            final_latency += queue_delay_ms
        self.result.final_latency.record(final_latency)
        if op_type == "read":
            self.result.read_latency.record(final_latency)
        else:
            self.result.update_latency.record(final_latency)
        if info.get("preliminary_latency_ms") is not None:
            preliminary = info["preliminary_latency_ms"]
            if queue_delay_ms:
                preliminary += queue_delay_ms
            self.result.preliminary_latency.record(preliminary)
        if "diverged" in info:
            self.result.divergence.record_outcome(
                bool(info["diverged"]),
                had_preliminary=info.get("had_preliminary", True))
