"""Figure 7: divergence of preliminary from final views.

Running Correctable Cassandra on a deliberately small (1 K records) dataset,
the paper measures how often the preliminary (R = 1) view differs from the
final (R = 2) view under YCSB workloads A and B with Zipfian and Latest
request distributions, as load increases.  Shapes to reproduce:

* workload A under the Latest distribution diverges the most (paper: up to
  ~25 %);
* workload B (5 % updates) diverges far less than workload A for the same
  distribution;
* Zipfian divergence sits below Latest divergence for the same workload.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.bench.common import (
    build_cassandra_scenario,
    cassandra_config_for,
    run_multi_region_load,
)
from repro.bench.sweep import JobsSpec, SweepPoint, make_points, run_sweep
from repro.metrics.divergence import DivergenceCounter
from repro.metrics.summary import format_table
from repro.sim.rand import derive_seed
from repro.sim.topology import Region
from repro.workloads.ycsb import workload_by_name

DEFAULT_CONFIGS = (
    ("A", "latest"),
    ("A", "zipfian"),
    ("B", "latest"),
    ("B", "zipfian"),
)
DEFAULT_THREADS = (4, 10, 20)


def build_fig07_points(configs: Iterable = DEFAULT_CONFIGS,
                       thread_counts: Sequence[int] = DEFAULT_THREADS,
                       duration_ms: float = 8_000.0,
                       warmup_ms: float = 2_000.0,
                       cooldown_ms: float = 1_000.0,
                       record_count: int = 1_000,
                       seed: int = 42) -> List[SweepPoint]:
    """One sweep point per ((workload, distribution), thread count) cell.

    The per-config load seed is derived here, at grid-construction time, so
    it only depends on the cell's labels — never on execution order.
    """
    return make_points("fig07", (
        ({"workload": workload_name, "distribution": distribution,
          "threads": threads},
         dict(workload=workload_name, distribution=distribution,
              threads=threads, duration_ms=duration_ms, warmup_ms=warmup_ms,
              cooldown_ms=cooldown_ms, record_count=record_count,
              scenario_seed=seed,
              load_seed=derive_seed(
                  seed, f"{workload_name}-{distribution}") % (2 ** 31)))
        for workload_name, distribution in configs
        for threads in thread_counts))


def run_fig07_point(point: SweepPoint) -> Dict:
    """Run one cell of the Figure 7 divergence grid (system CC2)."""
    kwargs = point.kwargs
    workload_name, distribution = kwargs["workload"], kwargs["distribution"]
    spec = workload_by_name(workload_name).with_distribution(distribution)
    scenario = build_cassandra_scenario(
        seed=kwargs["scenario_seed"], record_count=kwargs["record_count"],
        client_regions=(Region.IRL, Region.FRK, Region.VRG),
        config=cassandra_config_for("CC2"))
    results = run_multi_region_load(
        scenario, "CC2", spec, threads_per_client=kwargs["threads"],
        duration_ms=kwargs["duration_ms"], warmup_ms=kwargs["warmup_ms"],
        cooldown_ms=kwargs["cooldown_ms"], seed=kwargs["load_seed"])
    combined = DivergenceCounter()
    measured_ops = 0
    for result in results.values():
        combined.merge(result.divergence)
        measured_ops += result.measured_ops
    return {
        "workload": workload_name,
        "distribution": distribution,
        "threads_total": kwargs["threads"] * len(results),
        "divergence_pct": combined.divergence_percent(),
        "compared_reads": combined.total,
        "measured_ops": measured_ops,
    }


def run_fig07(configs: Iterable = DEFAULT_CONFIGS,
              thread_counts: Sequence[int] = DEFAULT_THREADS,
              duration_ms: float = 8_000.0, warmup_ms: float = 2_000.0,
              cooldown_ms: float = 1_000.0, record_count: int = 1_000,
              seed: int = 42, jobs: JobsSpec = 1) -> List[Dict]:
    """Regenerate the Figure 7 divergence series (system CC2).

    Divergence is aggregated over all three client regions to maximize the
    number of compared operations.
    """
    points = build_fig07_points(
        configs=configs, thread_counts=thread_counts, duration_ms=duration_ms,
        warmup_ms=warmup_ms, cooldown_ms=cooldown_ms,
        record_count=record_count, seed=seed)
    return run_sweep(points, run_fig07_point, jobs=jobs).records()


def format_fig07(records: List[Dict]) -> str:
    rows = [[r["workload"], r["distribution"], r["threads_total"],
             r["divergence_pct"], r["compared_reads"]] for r in records]
    return format_table(
        ["workload", "distribution", "total client threads",
         "divergence (%)", "compared reads"],
        rows,
        title="Figure 7 — divergence of preliminary from final views (CC2, 1K records)")
