"""End-to-end tests for the lean op pipeline at the client API layer.

``CorrectableClient.invoke_lean`` completes operations through a pooled
:class:`LeanCorrectable` over the fused storage protocol; these tests drive
it against a real (simulated) CC2 cluster and pin the fallback semantics:
``None`` whenever the binding cannot take the lean path, classic ``invoke``
untouched either way.
"""

from __future__ import annotations

import pytest

from repro.bench.common import cassandra_config_for
from repro.bindings.cassandra import CassandraBinding
from repro.core.client import CorrectableClient
from repro.core.cluster_spec import ClusterSpec
from repro.core.consistency import STRONG, WEAK
from repro.core.correctable import LeanCorrectable
from repro.core.operations import read, write
from repro.sim.topology import Region


def _stack(lean_ops: bool = True):
    scenario = ClusterSpec(seed=3, record_count=20,
                           client_regions=(Region.IRL,),
                           config=cassandra_config_for("CC2")).build()
    scenario.env.network.lean_ops = lean_ops
    binding = CassandraBinding(scenario.client_in(Region.IRL))
    return scenario, CorrectableClient(binding)


def _some_key(scenario) -> str:
    return next(iter(scenario.dataset.initial_items()))


class TestInvokeLean:
    def test_icg_read_delivers_preliminary_and_final(self):
        scenario, client = _stack()
        key = _some_key(scenario)
        expected = scenario.dataset.initial_items()[key]
        lean = client.invoke_lean(read(key))
        assert isinstance(lean, LeanCorrectable)
        assert lean.is_updating()
        scenario.env.run_until_idle()
        assert lean.is_final()
        assert lean.value() == expected
        assert lean.had_preliminary, "ICG read must surface its preliminary"
        assert lean.preliminary_value == expected
        assert lean.final_view().consistency is STRONG
        assert client.invocations == 1 and client.icg_invocations == 1
        LeanCorrectable.release(lean)

    def test_write_then_read_roundtrip(self):
        scenario, client = _stack()
        key = _some_key(scenario)
        lean_write = client.invoke_lean(write(key, "fresh"), levels=[STRONG])
        assert isinstance(lean_write, LeanCorrectable)
        scenario.env.run_until_idle()
        assert lean_write.value() == "fresh"
        LeanCorrectable.release(lean_write)
        lean_read = client.invoke_lean(read(key), levels=[STRONG])
        scenario.env.run_until_idle()
        assert lean_read.value() == "fresh"
        assert not lean_read.had_preliminary, "single-level read is not ICG"
        LeanCorrectable.release(lean_read)

    def test_kill_switch_off_returns_none(self):
        scenario, client = _stack(lean_ops=False)
        assert client.invoke_lean(read(_some_key(scenario))) is None
        # The classic pipeline still works and counters only count real ops.
        correctable = client.invoke(read(_some_key(scenario)))
        scenario.env.run_until_idle()
        assert correctable.is_final()
        assert client.invocations == 1

    def test_mid_run_kill_switch_flip_falls_back(self):
        scenario, client = _stack()
        key = _some_key(scenario)
        assert client.invoke_lean(read(key)) is not None
        scenario.env.network.lean_ops = False
        assert client.invoke_lean(read(key)) is None
        scenario.env.network.lean_ops = True
        assert client.invoke_lean(read(key)) is not None
        scenario.env.run_until_idle()

    def test_unmappable_operation_returns_none_without_side_effects(self):
        scenario, client = _stack()
        key = _some_key(scenario)
        storage = client.binding.client
        writes_before = storage.writes_sent
        # A weak+strong write needs the optimistic local echo the sink
        # protocol does not model: no lean mapping, nothing issued.
        assert client.invoke_lean(write(key, "x"),
                                  levels=[WEAK, STRONG]) is None
        assert storage.writes_sent == writes_before
        assert client.invocations == 0

    def test_session_invoke_lean_counts_only_issued_ops(self):
        scenario, client = _stack()
        key = _some_key(scenario)
        pool = client.sessions(2)
        session = pool.session(0)
        lean = session.invoke_lean(read(key))
        assert lean is not None
        scenario.env.network.lean_ops = False
        assert session.invoke_lean(read(key)) is None
        assert session.invocations == 1
        scenario.env.run_until_idle()

    def test_matches_classic_pipeline_result(self):
        scenario_a, client_a = _stack(lean_ops=True)
        scenario_b, client_b = _stack(lean_ops=False)
        key = _some_key(scenario_a)
        lean = client_a.invoke_lean(read(key))
        classic = client_b.invoke(read(key))
        scenario_a.env.run_until_idle()
        scenario_b.env.run_until_idle()
        lean_final = lean.final_view()
        classic_final = classic.final_view()
        assert lean_final.value == classic_final.value
        assert lean_final.consistency is classic_final.consistency
        assert lean.preliminary_value == classic.views()[0].value
