"""Message-passing network with latency and byte accounting.

Nodes register under a unique name; :meth:`Network.send` delivers a
:class:`Message` to the destination node's ``handle_message`` after a one-way
delay drawn from the :class:`~repro.sim.topology.Topology`.  Every message's
size is charged to the (source, destination) link, which is what the paper's
bandwidth figures (Figures 8 and 10) measure on the client-replica links.

The send path is written for throughput: with no faults installed the
partition/degradation checks cost one truthiness test each (no ``frozenset``
allocation), per-node byte totals are maintained as O(1) counters instead of
scanning every link, and payload sizing is iterative with a cache for
non-ASCII strings.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, TYPE_CHECKING

from repro.sim.scheduler import Scheduler
from repro.sim.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.node import Node

#: Fixed per-message framing overhead (TCP/IP + RPC headers), in bytes.
MESSAGE_HEADER_BYTES = 50

_message_ids = itertools.count(1)

#: UTF-8 sizes of non-ASCII strings seen by :func:`estimate_payload_size`
#: (ASCII strings — the common case — are sized with ``len`` directly).
_STR_SIZE_CACHE: Dict[str, int] = {}
_STR_SIZE_CACHE_LIMIT = 4096


def _utf8_size(text: str) -> int:
    if text.isascii():
        return len(text)
    size = _STR_SIZE_CACHE.get(text)
    if size is None:
        if len(_STR_SIZE_CACHE) >= _STR_SIZE_CACHE_LIMIT:
            _STR_SIZE_CACHE.clear()
        size = len(text.encode("utf-8"))
        _STR_SIZE_CACHE[text] = size
    return size


def estimate_payload_size(payload: Any) -> int:
    """Rough byte size of a message payload.

    The simulator does not serialize payloads; this helper estimates sizes so
    bandwidth figures have realistic proportions.  Callers that know the true
    wire size (e.g. a 100 B YCSB value) should pass ``size_bytes`` explicitly
    to :meth:`Network.send` instead.  Traversal is iterative (no recursion
    limit on deeply nested payloads) and sums are order-independent, so the
    result matches the original recursive definition exactly.
    """
    total = 0
    stack = [payload]
    pop = stack.pop
    while stack:
        item = pop()
        if item is None:
            continue
        tp = type(item)
        if tp is str:
            total += _utf8_size(item)
        elif tp is bool:
            total += 1
        elif tp is int or tp is float:
            total += 8
        elif tp is bytes:
            total += len(item)
        elif tp is dict:
            for key, value in item.items():
                stack.append(key)
                stack.append(value)
        elif tp is list or tp is tuple or tp is set or tp is frozenset:
            stack.extend(item)
        # Subclasses of the above (rare) and unknown types:
        elif isinstance(item, bool):
            total += 1
        elif isinstance(item, (int, float)):
            total += 8
        elif isinstance(item, bytes):
            total += len(item)
        elif isinstance(item, str):
            total += _utf8_size(item)
        elif isinstance(item, dict):
            for key, value in item.items():
                stack.append(key)
                stack.append(value)
        elif isinstance(item, (list, tuple, set, frozenset)):
            stack.extend(item)
        else:
            total += 32
    return total


class Message:
    """A network message between two named nodes."""

    __slots__ = ("src", "dst", "kind", "payload", "size_bytes", "msg_id",
                 "send_time")

    def __init__(self, src: str, dst: str, kind: str,
                 payload: Optional[Dict[str, Any]] = None,
                 size_bytes: Optional[int] = 0, msg_id: int = 0,
                 send_time: float = 0.0) -> None:
        self.src = src
        self.dst = dst
        self.kind = kind
        self.payload = {} if payload is None else payload
        self.msg_id = msg_id if msg_id else next(_message_ids)
        self.send_time = send_time
        if size_bytes is None or size_bytes <= 0:
            size_bytes = MESSAGE_HEADER_BYTES + estimate_payload_size(
                self.payload)
        self.size_bytes = size_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Message(src={self.src!r}, dst={self.dst!r}, "
                f"kind={self.kind!r}, size_bytes={self.size_bytes}, "
                f"msg_id={self.msg_id})")


@dataclass
class LinkStats:
    """Accumulated traffic statistics for one directed link."""

    messages: int = 0
    bytes: int = 0

    def record(self, size_bytes: int) -> None:
        self.messages += 1
        self.bytes += size_bytes


class _FrozenLinkStats(LinkStats):
    """The shared all-zero stats returned for links that never carried
    traffic.  Immutable, so callers cannot corrupt one another's view by
    mutating what used to be a per-call throwaway instance."""

    def __init__(self) -> None:
        object.__setattr__(self, "messages", 0)
        object.__setattr__(self, "bytes", 0)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(
            "this LinkStats is the shared zero for unused links; "
            "it cannot be mutated")

    def record(self, size_bytes: int) -> None:
        raise AttributeError(
            "this LinkStats is the shared zero for unused links; "
            "record traffic through Network.send instead")


#: Returned by :meth:`Network.link_stats` for links with no recorded traffic.
EMPTY_LINK_STATS = _FrozenLinkStats()


class Network:
    """Delivers messages between registered nodes with WAN latencies."""

    def __init__(self, scheduler: Scheduler, topology: Topology) -> None:
        self.scheduler = scheduler
        self.topology = topology
        self._nodes: Dict[str, "Node"] = {}
        self._links: Dict[Tuple[str, str], LinkStats] = {}
        #: O(1) per-node byte totals (every link where the node is an
        #: endpoint), maintained on send instead of scanned on demand.
        self._node_bytes: Dict[str, int] = {}
        self._partitioned: set = set()
        self._partitioned_regions: set = set()
        #: Extra one-way latency (ms) per node pair or region pair; region
        #: keys use the ``"region:<name>"`` form so the two namespaces never
        #: collide with node names.
        self._link_extra_ms: Dict[frozenset, float] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # -- membership ------------------------------------------------------
    def register(self, node: "Node") -> None:
        """Register a node; its name must be unique within the network."""
        if node.name in self._nodes:
            raise ValueError(f"node name already registered: {node.name}")
        self._nodes[node.name] = node

    def unregister(self, name: str) -> None:
        self._nodes.pop(name, None)

    def node(self, name: str) -> "Node":
        return self._nodes[name]

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    # -- fault injection ---------------------------------------------------
    def partition(self, name_a: str, name_b: str) -> None:
        """Drop all future messages between two nodes (both directions)."""
        self._partitioned.add(frozenset({name_a, name_b}))

    def heal(self, name_a: str, name_b: str) -> None:
        """Remove a partition previously installed by :meth:`partition`."""
        self._partitioned.discard(frozenset({name_a, name_b}))

    def partition_regions(self, region_a: str, region_b: str) -> None:
        """Drop all future messages between two regions (both directions).

        A WAN partition: every node in ``region_a`` loses connectivity to
        every node in ``region_b``, regardless of when nodes join.
        """
        self._partitioned_regions.add(frozenset({region_a, region_b}))

    def heal_regions(self, region_a: str, region_b: str) -> None:
        """Remove a region partition installed by :meth:`partition_regions`."""
        self._partitioned_regions.discard(frozenset({region_a, region_b}))

    def is_partitioned(self, name_a: str, name_b: str) -> bool:
        if self._partitioned \
                and frozenset({name_a, name_b}) in self._partitioned:
            return True
        if self._partitioned_regions:
            node_a = self._nodes.get(name_a)
            node_b = self._nodes.get(name_b)
            if node_a is not None and node_b is not None:
                key = frozenset({node_a.region, node_b.region})
                if key in self._partitioned_regions:
                    return True
        return False

    def degrade_link(self, endpoint_a: str, endpoint_b: str,
                     extra_ms: float) -> None:
        """Add one-way latency between two nodes (or two ``region:<r>`` keys)."""
        if extra_ms < 0:
            raise ValueError("extra latency must be non-negative")
        self._link_extra_ms[frozenset({endpoint_a, endpoint_b})] = extra_ms

    def restore_link(self, endpoint_a: str, endpoint_b: str) -> None:
        """Remove a degradation installed by :meth:`degrade_link`."""
        self._link_extra_ms.pop(frozenset({endpoint_a, endpoint_b}), None)

    def link_extra_ms(self, src: str, dst: str) -> float:
        """Total injected one-way latency currently applied to src→dst."""
        if not self._link_extra_ms:
            return 0.0
        extra = self._link_extra_ms.get(frozenset({src, dst}), 0.0)
        src_node = self._nodes.get(src)
        dst_node = self._nodes.get(dst)
        if src_node is not None and dst_node is not None:
            extra += self._link_extra_ms.get(
                frozenset({f"region:{src_node.region}",
                           f"region:{dst_node.region}"}), 0.0)
        return extra

    # -- traffic -----------------------------------------------------------
    def send(self, src: str, dst: str, kind: str,
             payload: Optional[Dict[str, Any]] = None,
             size_bytes: Optional[int] = None,
             extra_delay_ms: float = 0.0) -> Message:
        """Send a message; returns the :class:`Message` (already accounted).

        The message is charged to the link even if the destination is down or
        partitioned away — bytes leave the sender's NIC regardless.  A *dead
        sender*, however, sends nothing at all: work still queued on a
        crashed node must not leak protocol messages (or bytes) out of it.
        """
        nodes = self._nodes
        src_node = nodes.get(src)
        if src_node is None:
            raise KeyError(f"unknown source node: {src}")
        dst_node = nodes.get(dst)
        if dst_node is None:
            raise KeyError(f"unknown destination node: {dst}")
        message = Message(src, dst, kind, payload, size_bytes,
                          send_time=self.scheduler.clock._now)
        if not src_node.alive:
            self.messages_dropped += 1
            return message
        self.messages_sent += 1
        size = message.size_bytes
        key = (src, dst)
        stats = self._links.get(key)
        if stats is None:
            stats = self._links[key] = LinkStats()
        stats.messages += 1
        stats.bytes += size
        node_bytes = self._node_bytes
        node_bytes[src] = node_bytes.get(src, 0) + size
        if dst != src:
            node_bytes[dst] = node_bytes.get(dst, 0) + size

        # Zero-fault fast path: with no partitions installed the check is
        # two falsy tests, no frozenset allocation.
        if self._partitioned or self._partitioned_regions:
            if self.is_partitioned(src, dst):
                self.messages_dropped += 1
                return message
        if not dst_node.alive:
            self.messages_dropped += 1
            return message

        src_host = src_node.host
        same_host = (src_host is not None
                     and src_host == dst_node.host) or src == dst
        delay = self.topology.one_way(src_node.region, dst_node.region,
                                      same_host=same_host)
        if self._link_extra_ms:
            delay += self.link_extra_ms(src, dst)
        self.scheduler.schedule_call(delay + extra_delay_ms,
                                     self._deliver, (message,))
        return message

    def _deliver(self, message: Message) -> None:
        node = self._nodes.get(message.dst)
        if node is None or not node.alive:
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        node.handle_message(message)

    # -- accounting --------------------------------------------------------
    def _link(self, src: str, dst: str) -> LinkStats:
        key = (src, dst)
        stats = self._links.get(key)
        if stats is None:
            stats = self._links[key] = LinkStats()
        return stats

    def link_stats(self, src: str, dst: str) -> LinkStats:
        """Traffic on the directed link src→dst.

        Links that never carried traffic share one immutable zero instance
        (:data:`EMPTY_LINK_STATS`); callers must treat the result as
        read-only.
        """
        return self._links.get((src, dst), EMPTY_LINK_STATS)

    def bytes_between(self, name_a: str, name_b: str) -> int:
        """Total bytes exchanged between two nodes, both directions."""
        return (self.link_stats(name_a, name_b).bytes
                + self.link_stats(name_b, name_a).bytes)

    def bytes_touching(self, name: str) -> int:
        """Total bytes on every link where ``name`` is an endpoint."""
        return self._node_bytes.get(name, 0)

    def total_bytes(self) -> int:
        return sum(stats.bytes for stats in self._links.values())

    def reset_stats(self) -> None:
        """Clear byte counters (used to scope measurement windows)."""
        self._links.clear()
        self._node_bytes.clear()
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
