"""Correctable: a placeholder for an incrementally refined result.

A Correctable starts in the *updating* state.  Preliminary views trigger
``on_update`` callbacks and keep the Correctable updating; the final view (or
an error) closes it, moving it to *final* (or *error*) and firing the
corresponding callbacks (Figure 3 of the paper).

The two central methods are :meth:`Correctable.set_callbacks` and
:meth:`Correctable.speculate`; the latter captures the speculation pattern of
Listing 3 and is implemented in :mod:`repro.core.speculation`.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.consistency import ConsistencyLevel
from repro.core.errors import InvalidStateError, OperationError
from repro.core.promise import Promise
from repro.core.views import View


class CorrectableState(Enum):
    """Lifecycle of a :class:`Correctable` (Figure 3)."""

    UPDATING = "updating"
    FINAL = "final"
    ERROR = "error"


UpdateCallback = Callable[[View], None]
ErrorCallback = Callable[[BaseException], None]


class Correctable:
    """The progressively improving result of an operation on a replicated object."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._state = CorrectableState.UPDATING
        self._views: List[View] = []
        # Cached snapshots handed out by views() / preliminary_views(); the
        # caches are re-cut only when a new view arrived since the last call,
        # so polling a hot Correctable copies nothing.
        self._views_tuple: Optional[Tuple[View, ...]] = None
        self._prelim_tuple: Optional[Tuple[View, ...]] = None
        self._error: Optional[BaseException] = None
        self._update_callbacks: List[UpdateCallback] = []
        self._final_callbacks: List[UpdateCallback] = []
        self._error_callbacks: List[ErrorCallback] = []
        self._clock = clock
        #: Updates that arrived after the Correctable closed (late/out-of-order
        #: deliveries); they are dropped but counted for observability.
        self.discarded_updates = 0

    # -- state inspection --------------------------------------------------
    @property
    def state(self) -> CorrectableState:
        return self._state

    def is_updating(self) -> bool:
        return self._state is CorrectableState.UPDATING

    def is_final(self) -> bool:
        return self._state is CorrectableState.FINAL

    def is_error(self) -> bool:
        return self._state is CorrectableState.ERROR

    def is_done(self) -> bool:
        return self._state is not CorrectableState.UPDATING

    def views(self) -> Tuple[View, ...]:
        """Every view delivered so far, in arrival order (final last).

        Returns an immutable snapshot; repeated calls between deliveries
        return the *same* cached tuple, so hot paths that poll a
        Correctable never copy the view list (views are only ever
        appended, never removed, so a length check suffices to detect a
        stale cache).
        """
        cached = self._views_tuple
        if cached is None or len(cached) != len(self._views):
            cached = self._views_tuple = tuple(self._views)
        return cached

    def latest_view(self) -> Optional[View]:
        """The most recent view, or None if nothing has arrived yet."""
        return self._views[-1] if self._views else None

    def preliminary_views(self) -> Tuple[View, ...]:
        """All views except the final one (immutable snapshot, cached)."""
        if self._state is CorrectableState.FINAL and self._views:
            cached = self._prelim_tuple
            if cached is None:
                # No further views can arrive once FINAL: cut once, keep.
                cached = self._prelim_tuple = self.views()[:-1]
            return cached
        return self.views()

    def final_view(self) -> View:
        """The final view.

        Raises:
            InvalidStateError: if the Correctable has not closed with a value.
        """
        if self._state is CorrectableState.ERROR:
            assert self._error is not None
            raise self._error
        if self._state is not CorrectableState.FINAL:
            raise InvalidStateError("correctable has not closed yet")
        return self._views[-1]

    def value(self) -> Any:
        """The final value (shorthand for ``final_view().value``)."""
        return self.final_view().value

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    # -- callbacks (application-facing) -------------------------------------
    def set_callbacks(self,
                      on_update: Optional[UpdateCallback] = None,
                      on_final: Optional[UpdateCallback] = None,
                      on_error: Optional[ErrorCallback] = None) -> "Correctable":
        """Attach callbacks for the three state transitions.

        Callbacks registered after the corresponding transition already
        happened fire immediately (Promise semantics), so application code
        never races with the storage.  Returns ``self`` for chaining.
        """
        if on_update is not None:
            self._update_callbacks.append(on_update)
            for view in self.preliminary_views():
                on_update(view)
        if on_final is not None:
            if self._state is CorrectableState.FINAL:
                on_final(self._views[-1])
            else:
                self._final_callbacks.append(on_final)
        if on_error is not None:
            if self._state is CorrectableState.ERROR:
                assert self._error is not None
                on_error(self._error)
            else:
                self._error_callbacks.append(on_error)
        return self

    def on_update(self, callback: UpdateCallback) -> "Correctable":
        """Shorthand for ``set_callbacks(on_update=callback)``."""
        return self.set_callbacks(on_update=callback)

    def on_final(self, callback: UpdateCallback) -> "Correctable":
        """Shorthand for ``set_callbacks(on_final=callback)``."""
        return self.set_callbacks(on_final=callback)

    def on_error(self, callback: ErrorCallback) -> "Correctable":
        """Shorthand for ``set_callbacks(on_error=callback)``."""
        return self.set_callbacks(on_error=callback)

    # -- transitions (driven by the library / bindings) ----------------------
    def _now(self) -> Optional[float]:
        return self._clock() if self._clock is not None else None

    def update(self, value: Any, consistency: ConsistencyLevel,
               metadata: Optional[dict] = None) -> Optional[View]:
        """Deliver a preliminary view (updating → updating transition).

        Late updates arriving after the Correctable closed are dropped and
        counted in :attr:`discarded_updates`.
        """
        if self._state is not CorrectableState.UPDATING:
            self.discarded_updates += 1
            return None
        view = View(value=value, consistency=consistency,
                    timestamp=self._now(), metadata=metadata or {})
        self._views.append(view)
        for callback in list(self._update_callbacks):
            callback(view)
        return view

    def close(self, value: Any, consistency: ConsistencyLevel,
              metadata: Optional[dict] = None,
              is_confirmation: bool = False) -> View:
        """Deliver the final view (updating → final transition)."""
        if self._state is not CorrectableState.UPDATING:
            raise InvalidStateError(
                f"correctable already {self._state.value}; cannot close")
        view = View(value=value, consistency=consistency,
                    timestamp=self._now(), metadata=metadata or {},
                    is_confirmation=is_confirmation)
        self._views.append(view)
        self._state = CorrectableState.FINAL
        callbacks = list(self._final_callbacks)
        self._clear_callbacks()
        for callback in callbacks:
            callback(view)
        return view

    def close_with_view(self, view: View) -> View:
        """Close with an already-constructed :class:`View`."""
        if self._state is not CorrectableState.UPDATING:
            raise InvalidStateError(
                f"correctable already {self._state.value}; cannot close")
        self._views.append(view)
        self._state = CorrectableState.FINAL
        callbacks = list(self._final_callbacks)
        self._clear_callbacks()
        for callback in callbacks:
            callback(view)
        return view

    def fail(self, error: BaseException) -> None:
        """Close with an error (updating → error transition)."""
        if self._state is not CorrectableState.UPDATING:
            raise InvalidStateError(
                f"correctable already {self._state.value}; cannot fail")
        self._state = CorrectableState.ERROR
        self._error = error
        callbacks = list(self._error_callbacks)
        self._clear_callbacks()
        for callback in callbacks:
            callback(error)

    def _clear_callbacks(self) -> None:
        self._update_callbacks = []
        self._final_callbacks = []
        self._error_callbacks = []

    # -- derived correctables ------------------------------------------------
    def speculate(self, speculation_fn: Callable[[Any], Any],
                  abort_fn: Optional[Callable[[Any], None]] = None,
                  stats: Optional["SpeculationStats"] = None) -> "Correctable":
        """Speculate on preliminary views (Listing 3).

        ``speculation_fn`` runs on every new view whose value differs from the
        previously speculated one.  The returned Correctable closes with the
        speculation output computed on an input matching the final view; if no
        preliminary matched, the function re-runs on the final value and
        ``abort_fn`` (if given) undoes the superseded speculation's effects.
        """
        from repro.core.speculation import attach_speculation
        return attach_speculation(self, speculation_fn, abort_fn, stats)

    def map(self, fn: Callable[[Any], Any]) -> "Correctable":
        """A Correctable whose every view is ``fn(view.value)``."""
        mapped = Correctable(clock=self._clock)

        def _on_update(view: View) -> None:
            mapped.update(fn(view.value), view.consistency,
                          metadata=dict(view.metadata))

        def _on_final(view: View) -> None:
            mapped.close(fn(view.value), view.consistency,
                         metadata=dict(view.metadata),
                         is_confirmation=view.is_confirmation)

        self.set_callbacks(on_update=_on_update, on_final=_on_final,
                           on_error=mapped.fail)
        return mapped

    def final_promise(self) -> Promise:
        """A :class:`Promise` for the final value."""
        promise = Promise()
        self.set_callbacks(
            on_final=lambda view: promise.resolve(view.value),
            on_error=promise.reject,
        )
        return promise

    # -- combinators -----------------------------------------------------------
    @staticmethod
    def resolved(value: Any, consistency: ConsistencyLevel) -> "Correctable":
        """A Correctable already closed with ``value``."""
        correctable = Correctable()
        correctable.close(value, consistency)
        return correctable

    @staticmethod
    def all(correctables: List["Correctable"]) -> Promise:
        """A Promise for the list of all final values (fails on first error)."""
        return Promise.all([c.final_promise() for c in correctables])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Correctable(state={self._state.value}, "
                f"views={len(self._views)})")


class LeanCorrectable:
    """Pooled flyweight Correctable for callers with final/value interest.

    The full :class:`Correctable` keeps a view list, three callback lists,
    and a metadata dict per view — none of which a caller that only wants
    the final value (plus at most one callback per transition) ever looks
    at.  ``LeanCorrectable`` is the slab-allocated equivalent behind
    :meth:`repro.core.client.CorrectableClient.invoke_lean`:

    * it **is** a lean completion sink: the storage client's fused protocol
      completes it positionally through the ``deliver_*`` methods below,
      with no response or metadata dicts on the way;
    * the latest value/consistency/timestamp live inline and :class:`View`
      objects are built only on demand (``latest_view`` / ``final_view`` /
      ``views``) — there is no view list;
    * callbacks are single-slot, one per transition, with the same
      fire-immediately-if-already-transitioned Promise semantics as
      :meth:`Correctable.set_callbacks` — enough surface for
      :func:`repro.core.speculation.attach_speculation` to work unchanged;
    * divergence/ICG accounting still sees preliminaries: the (latest)
      preliminary value and latency are retained in
      :attr:`preliminary_value` / :attr:`preliminary_latency_ms`, and late
      deliveries after close are dropped and counted in
      :attr:`discarded_updates`, exactly like the full Correctable.

    Instances recycle through a class-level free list: the owner calls
    :meth:`release` on a finished instance to return it (the pool-leak
    tests assert the acquire/release counters balance at quiesce).
    """

    __slots__ = ("_state", "_clock", "_error", "_value", "_consistency",
                 "_timestamp", "_is_confirmation", "_final_view",
                 "_on_update", "_on_final", "_on_error",
                 "had_preliminary", "preliminary_value",
                 "preliminary_latency_ms", "_preliminary_timestamp",
                 "final_latency_ms", "preliminary_consistency",
                 "final_consistency", "pending_value", "discarded_updates")

    _pool: List["LeanCorrectable"] = []
    created = 0
    reused = 0
    recycled = 0

    # -- pooling -------------------------------------------------------------
    @classmethod
    def acquire(cls, clock: Optional[Callable[[], float]] = None
                ) -> "LeanCorrectable":
        pool = cls._pool
        if pool:
            lean = pool.pop()
            cls.reused += 1
        else:
            lean = cls()
            cls.created += 1
        lean._clock = clock
        lean._state = CorrectableState.UPDATING
        lean._error = None
        lean._value = None
        lean._consistency = None
        lean._timestamp = None
        lean._is_confirmation = False
        lean._final_view = None
        lean._on_update = None
        lean._on_final = None
        lean._on_error = None
        lean.had_preliminary = False
        lean.preliminary_value = None
        lean.preliminary_latency_ms = None
        lean._preliminary_timestamp = None
        lean.final_latency_ms = None
        lean.preliminary_consistency = None
        lean.final_consistency = None
        lean.pending_value = None
        lean.discarded_updates = 0
        return lean

    @classmethod
    def release(cls, lean: "LeanCorrectable") -> None:
        """Return a finished instance to the pool.

        Only reference-holding fields are scrubbed here (so the pool never
        pins application values); :meth:`acquire` resets everything else.
        """
        lean._value = None
        lean._final_view = None
        lean._error = None
        lean._on_update = None
        lean._on_final = None
        lean._on_error = None
        lean.preliminary_value = None
        lean.pending_value = None
        lean._clock = None
        if len(cls._pool) < 1024:
            cls.recycled += 1
            cls._pool.append(lean)

    @classmethod
    def pool_stats(cls) -> Dict[str, int]:
        return {"created": cls.created, "reused": cls.reused,
                "recycled": cls.recycled, "free": len(cls._pool)}

    # -- state inspection ----------------------------------------------------
    @property
    def state(self) -> CorrectableState:
        return self._state

    def is_updating(self) -> bool:
        return self._state is CorrectableState.UPDATING

    def is_final(self) -> bool:
        return self._state is CorrectableState.FINAL

    def is_error(self) -> bool:
        return self._state is CorrectableState.ERROR

    def is_done(self) -> bool:
        return self._state is not CorrectableState.UPDATING

    @property
    def error(self) -> Optional[BaseException]:
        return self._error

    def views(self) -> Tuple[View, ...]:
        """The retained views, rebuilt on demand (latest preliminary +
        final); the lean pipeline delivers at most one of each."""
        views = []
        if self.had_preliminary:
            views.append(View(value=self.preliminary_value,
                              consistency=self.preliminary_consistency,
                              timestamp=self._preliminary_timestamp))
        if self._state is CorrectableState.FINAL:
            views.append(self.final_view())
        return tuple(views)

    def preliminary_views(self) -> Tuple[View, ...]:
        if self.had_preliminary:
            return (View(value=self.preliminary_value,
                         consistency=self.preliminary_consistency,
                         timestamp=self._preliminary_timestamp),)
        return ()

    def latest_view(self) -> Optional[View]:
        if self._state is CorrectableState.FINAL:
            return self.final_view()
        if self.had_preliminary:
            return View(value=self.preliminary_value,
                        consistency=self.preliminary_consistency,
                        timestamp=self._preliminary_timestamp)
        return None

    def final_view(self) -> View:
        if self._state is CorrectableState.ERROR:
            assert self._error is not None
            raise self._error
        if self._state is not CorrectableState.FINAL:
            raise InvalidStateError("correctable has not closed yet")
        view = self._final_view
        if view is None:
            view = self._final_view = View(
                value=self._value, consistency=self._consistency,
                timestamp=self._timestamp,
                is_confirmation=self._is_confirmation)
        return view

    def value(self) -> Any:
        return self.final_view().value

    # -- callbacks (single-slot) ---------------------------------------------
    def set_callbacks(self,
                      on_update: Optional[UpdateCallback] = None,
                      on_final: Optional[UpdateCallback] = None,
                      on_error: Optional[ErrorCallback] = None
                      ) -> "LeanCorrectable":
        """Attach at most one callback per transition (Promise semantics).

        A second registration on an occupied, still-armed slot raises —
        callers wanting fan-out use the full :class:`Correctable`.
        """
        if on_update is not None:
            if self._state is CorrectableState.UPDATING:
                if self._on_update is not None:
                    raise InvalidStateError(
                        "lean correctable holds one on_update callback")
                self._on_update = on_update
            if self.had_preliminary:
                on_update(View(value=self.preliminary_value,
                               consistency=self.preliminary_consistency,
                               timestamp=self._preliminary_timestamp))
        if on_final is not None:
            if self._state is CorrectableState.FINAL:
                on_final(self.final_view())
            elif self._state is CorrectableState.UPDATING:
                if self._on_final is not None:
                    raise InvalidStateError(
                        "lean correctable holds one on_final callback")
                self._on_final = on_final
        if on_error is not None:
            if self._state is CorrectableState.ERROR:
                assert self._error is not None
                on_error(self._error)
            elif self._state is CorrectableState.UPDATING:
                if self._on_error is not None:
                    raise InvalidStateError(
                        "lean correctable holds one on_error callback")
                self._on_error = on_error
        return self

    def on_update(self, callback: UpdateCallback) -> "LeanCorrectable":
        return self.set_callbacks(on_update=callback)

    def on_final(self, callback: UpdateCallback) -> "LeanCorrectable":
        return self.set_callbacks(on_final=callback)

    def on_error(self, callback: ErrorCallback) -> "LeanCorrectable":
        return self.set_callbacks(on_error=callback)

    def speculate(self, speculation_fn: Callable[[Any], Any],
                  abort_fn: Optional[Callable[[Any], None]] = None,
                  stats: Optional["SpeculationStats"] = None) -> "Correctable":
        """Speculate on preliminary views (Listing 3); see
        :meth:`Correctable.speculate`."""
        from repro.core.speculation import attach_speculation
        return attach_speculation(self, speculation_fn, abort_fn, stats)

    # -- the lean completion sink --------------------------------------------
    def _now(self) -> Optional[float]:
        return self._clock() if self._clock is not None else None

    def deliver_read_preliminary(self, value: Any, timestamp: Any,
                                 latency_ms: float) -> None:
        if self._state is not CorrectableState.UPDATING:
            self.discarded_updates += 1
            return
        self.had_preliminary = True
        self.preliminary_value = value
        self.preliminary_latency_ms = latency_ms
        self._preliminary_timestamp = self._now()
        callback = self._on_update
        if callback is not None:
            callback(View(value=value,
                          consistency=self.preliminary_consistency,
                          timestamp=self._preliminary_timestamp))

    def deliver_read_final(self, value: Any, timestamp: Any,
                           latency_ms: float, is_confirmation: bool) -> None:
        self._close(value, latency_ms, is_confirmation)

    def deliver_read_error(self, error: str, latency_ms: float) -> None:
        self._fail(error, latency_ms)

    def deliver_write_ack(self, timestamp: Any, latency_ms: float) -> None:
        # The strong view of a write is its acknowledgement; close with the
        # value the caller wrote (parked in ``pending_value`` at submit).
        self._close(self.pending_value, latency_ms, False)

    def deliver_write_error(self, error: str, latency_ms: float) -> None:
        self._fail(error, latency_ms)

    def _close(self, value: Any, latency_ms: float,
               is_confirmation: bool) -> None:
        if self._state is not CorrectableState.UPDATING:
            self.discarded_updates += 1
            return
        if is_confirmation:
            # Confirmation optimization: the final response confirms the
            # preliminary instead of carrying data.
            value = self.preliminary_value
        self._state = CorrectableState.FINAL
        self._value = value
        self._consistency = self.final_consistency
        self._timestamp = self._now()
        self._is_confirmation = is_confirmation
        self.final_latency_ms = latency_ms
        callback = self._on_final
        self._on_update = None
        self._on_final = None
        self._on_error = None
        if callback is not None:
            callback(self.final_view())

    def _fail(self, error: str, latency_ms: float) -> None:
        if self._state is not CorrectableState.UPDATING:
            self.discarded_updates += 1
            return
        self._state = CorrectableState.ERROR
        self._error = OperationError(error)
        self.final_latency_ms = latency_ms
        callback = self._on_error
        self._on_update = None
        self._on_final = None
        self._on_error = None
        if callback is not None:
            callback(self._error)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LeanCorrectable(state={self._state.value})"


# Imported late to avoid a circular import at module load time; re-exported
# here so `Correctable.speculate(..., stats=...)` type hints resolve.
from repro.core.speculation import SpeculationStats  # noqa: E402  (re-export)
