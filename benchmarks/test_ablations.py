"""Ablation benchmarks for the design choices called out in DESIGN.md."""

import pytest

from repro.bench.ablations import (
    format_confirmation_optimization_ablation,
    format_ticket_threshold_ablation,
    format_view_count_ablation,
    run_confirmation_optimization_ablation,
    run_ticket_threshold_ablation,
    run_view_count_ablation,
)


@pytest.mark.benchmark(group="ablations")
def test_ablation_ticket_threshold(benchmark, save_report):
    records = benchmark.pedantic(
        run_ticket_threshold_ablation,
        kwargs=dict(thresholds=(0, 5, 20, 60), stock=200, retailers=4, seed=42),
        rounds=1, iterations=1)
    save_report("ablation_ticket_threshold",
                format_ticket_threshold_ablation(records))
    by_threshold = {r["threshold"]: r for r in records}
    # A higher threshold means more purchases wait for the atomic view, so
    # mean latency rises monotonically with the threshold.
    latencies = [by_threshold[t]["mean_latency_ms"] for t in (0, 5, 20, 60)]
    assert latencies == sorted(latencies)
    # The stock is never oversold at any threshold in these runs.
    for record in records:
        assert record["oversold"] == 0


@pytest.mark.benchmark(group="ablations")
def test_ablation_view_count(benchmark, save_report):
    records = benchmark.pedantic(run_view_count_ablation,
                                 kwargs=dict(news_items=10, reads=50),
                                 rounds=1, iterations=1)
    save_report("ablation_view_count", format_view_count_ablation(records))
    by_config = {r["configuration"]: r for r in records}
    two = by_config["2 views (backup+primary)"]
    three = by_config["3 views (cache+backup+primary)"]
    # The cached third view slashes time-to-first-content at the cost of one
    # more refresh per read (the interactivity/throughput trade-off of §4.5).
    assert three["mean_first_view_ms"] < two["mean_first_view_ms"] / 4
    assert three["refreshes_per_read"] > two["refreshes_per_read"]


@pytest.mark.benchmark(group="ablations")
def test_ablation_confirmation_optimization(benchmark, save_report):
    records = benchmark.pedantic(
        run_confirmation_optimization_ablation,
        kwargs=dict(threads=10, duration_ms=6_000.0, seed=42),
        rounds=1, iterations=1)
    save_report("ablation_confirmation_optimization",
                format_confirmation_optimization_ablation(records))
    by_system = {r["system"]: r for r in records}
    assert by_system["*CC2"]["kb_per_op"] < by_system["CC2"]["kb_per_op"]
