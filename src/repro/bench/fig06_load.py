"""Figure 6: Correctable Cassandra under YCSB load.

Latency as a function of throughput for workloads A (50:50), B (95:5) and
C (read-only), comparing C1, C2 and CC2 (whose preliminary and final views
are reported separately).  Three clients — one per region, each connected to
a remote replica — generate load; the reported numbers are for the client in
Ireland, as in the paper.  Shapes to reproduce:

* CC2's preliminary latency tracks C1 and its final latency tracks C2;
* CC2 saturates at a somewhat lower throughput than C2 (the cost of
  preliminary flushing at the coordinator).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.bench.common import (
    build_cassandra_scenario,
    cassandra_config_for,
    run_multi_region_load,
)
from repro.bench.sweep import JobsSpec, SweepPoint, make_points, run_sweep
from repro.metrics.summary import format_table
from repro.sim.topology import Region
from repro.workloads.ycsb import workload_by_name

DEFAULT_SYSTEMS = ("C1", "C2", "CC2")
DEFAULT_WORKLOADS = ("A", "B", "C")
DEFAULT_THREADS = (2, 6, 12)


def build_fig06_points(systems: Iterable[str] = DEFAULT_SYSTEMS,
                       workloads: Iterable[str] = DEFAULT_WORKLOADS,
                       thread_counts: Sequence[int] = DEFAULT_THREADS,
                       duration_ms: float = 8_000.0,
                       warmup_ms: float = 2_000.0,
                       cooldown_ms: float = 1_000.0,
                       record_count: int = 1_000, seed: int = 42,
                       use_histograms: bool = False) -> List[SweepPoint]:
    """One sweep point per (workload, system, thread count) cell."""
    return make_points("fig06", (
        ({"workload": workload_name, "system": system, "threads": threads},
         dict(workload=workload_name, system=system, threads=threads,
              duration_ms=duration_ms, warmup_ms=warmup_ms,
              cooldown_ms=cooldown_ms, record_count=record_count, seed=seed,
              use_histograms=use_histograms))
        for workload_name in workloads
        for system in systems
        for threads in thread_counts))


def run_fig06_point(point: SweepPoint) -> Dict:
    """Run one (workload, system, thread count) cell of the Figure 6 grid."""
    kwargs = point.kwargs
    workload_name, system = kwargs["workload"], kwargs["system"]
    seed = kwargs["seed"]
    spec = workload_by_name(workload_name)
    scenario = build_cassandra_scenario(
        seed=seed, record_count=kwargs["record_count"],
        client_regions=(Region.IRL, Region.FRK, Region.VRG),
        config=cassandra_config_for(system))
    results = run_multi_region_load(
        scenario, system, spec, threads_per_client=kwargs["threads"],
        duration_ms=kwargs["duration_ms"], warmup_ms=kwargs["warmup_ms"],
        cooldown_ms=kwargs["cooldown_ms"], seed=seed,
        use_histograms=kwargs.get("use_histograms", False))
    measured = results[Region.IRL]
    return {
        "workload": workload_name,
        "system": system,
        "threads_per_client": kwargs["threads"],
        "throughput_ops_s": measured.throughput_ops_per_sec(),
        "final_mean_ms": measured.final_latency.mean(),
        "final_p99_ms": measured.final_latency.p99(),
        "preliminary_mean_ms": measured.preliminary_latency.mean()
        if measured.preliminary_latency.count else None,
        "measured_ops": measured.measured_ops,
    }


def run_fig06(systems: Iterable[str] = DEFAULT_SYSTEMS,
              workloads: Iterable[str] = DEFAULT_WORKLOADS,
              thread_counts: Sequence[int] = DEFAULT_THREADS,
              duration_ms: float = 8_000.0, warmup_ms: float = 2_000.0,
              cooldown_ms: float = 1_000.0, record_count: int = 1_000,
              seed: int = 42, use_histograms: bool = False,
              jobs: JobsSpec = 1) -> List[Dict]:
    """Regenerate the Figure 6 latency-vs-throughput series.

    Returns one record per (workload, system, thread count) with the measured
    client's throughput and preliminary/final latencies.
    """
    points = build_fig06_points(
        systems=systems, workloads=workloads, thread_counts=thread_counts,
        duration_ms=duration_ms, warmup_ms=warmup_ms, cooldown_ms=cooldown_ms,
        record_count=record_count, seed=seed, use_histograms=use_histograms)
    return run_sweep(points, run_fig06_point, jobs=jobs).records()


def format_fig06(records: List[Dict]) -> str:
    """Render the figure as one table ordered by workload / system / load."""
    rows = []
    for record in records:
        rows.append([
            record["workload"], record["system"],
            record["threads_per_client"],
            record["throughput_ops_s"],
            record["final_mean_ms"],
            record["preliminary_mean_ms"]
            if record["preliminary_mean_ms"] is not None else "-",
        ])
    return format_table(
        ["workload", "system", "threads/client", "throughput (ops/s)",
         "final latency (ms)", "preliminary latency (ms)"],
        rows,
        title="Figure 6 — latency vs throughput under YCSB load (client in IRL)")
