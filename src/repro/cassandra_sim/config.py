"""Configuration knobs for the simulated Cassandra cluster."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CassandraConfig:
    """Cluster-wide configuration.

    Service times model the CPU cost of handling a request at a replica; the
    coordinator pays ``preliminary_flush_ms`` extra for every ICG read, which
    is what produces Correctable Cassandra's throughput drop in Figure 6.
    """

    #: Number of replicas holding each key.
    replication_factor: int = 3
    #: CPU time a replica spends serving one read (ms).
    read_service_ms: float = 1.5
    #: CPU time a replica spends applying one write (ms).
    write_service_ms: float = 1.0
    #: Extra coordinator CPU time for flushing a preliminary response (ms).
    preliminary_flush_ms: float = 0.6
    #: Size of a full record returned by a read (bytes).  The single-request
    #: microbenchmark uses 100 B objects; the YCSB load/bandwidth experiments
    #: use the YCSB default of 10 fields × 100 B = 1000 B records.
    value_size_bytes: int = 100
    #: Size of a key on the wire (bytes).
    key_size_bytes: int = 20
    #: Per-response metadata overhead (bytes).
    response_overhead_bytes: int = 40
    #: Size of a confirmation message body (bytes), for the *CC optimization.
    confirmation_bytes: int = 10
    #: Whether final views identical to the preliminary are replaced by a
    #: small confirmation message (the ``*CC`` optimization of Section 5.2).
    confirmation_optimization: bool = False
    #: Whether quorum reads repair stale replicas afterwards.
    read_repair: bool = False

    def quorum(self) -> int:
        """Majority quorum size for this replication factor."""
        return self.replication_factor // 2 + 1
