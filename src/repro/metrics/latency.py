"""Latency recording with averages and percentiles.

Two recorders share one summary interface:

* :class:`LatencyRecorder` keeps every sample exactly — percentiles use
  linear interpolation over the sorted samples, which is what the committed
  figure tables were produced with.  Use it whenever numbers must be exact.
* :class:`HistogramRecorder` is an HDR-style log-linear histogram with O(1)
  :meth:`~HistogramRecorder.record` and memory independent of the sample
  count, at a bounded relative error on percentiles.  Use it for
  million-operation perf runs where keeping (and sorting) every sample is
  the bottleneck.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional


class LatencyRecorder:
    """Collects latency samples (milliseconds) and summarizes them exactly."""

    __slots__ = ("name", "_samples", "_sorted")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def record(self, latency_ms: float) -> None:
        if latency_ms < 0:
            raise ValueError(f"negative latency: {latency_ms}")
        self._samples.append(latency_ms)
        self._sorted = None

    def extend(self, latencies: Iterable[float]) -> None:
        """Bulk-record: one validation pass, one append, one invalidation."""
        values = list(latencies)
        if values and min(values) < 0:
            raise ValueError(f"negative latency: {min(values)}")
        self._samples.extend(values)
        self._sorted = None

    def merge(self, other: "LatencyRecorder") -> None:
        self._samples.extend(other._samples)
        self._sorted = None

    # -- summaries ---------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._samples)

    def samples(self) -> List[float]:
        """The exact recorded samples (escape hatch for exact statistics)."""
        return list(self._samples)

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def minimum(self) -> float:
        return min(self._samples) if self._samples else 0.0

    def maximum(self) -> float:
        return max(self._samples) if self._samples else 0.0

    def stddev(self) -> float:
        if len(self._samples) < 2:
            return 0.0
        mu = self.mean()
        variance = sum((x - mu) ** 2 for x in self._samples) / (len(self._samples) - 1)
        return math.sqrt(variance)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0 < p <= 100) using linear interpolation."""
        if not self._samples:
            return 0.0
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        data = self._sorted
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return data[low]
        fraction = rank - low
        return data[low] + (data[high] - data[low]) * fraction

    def p50(self) -> float:
        return self.percentile(50)

    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> dict:
        """Mean / p50 / p99 / min / max / count in one dictionary."""
        return {
            "name": self.name,
            "count": self.count,
            "mean_ms": self.mean(),
            "p50_ms": self.p50(),
            "p99_ms": self.p99(),
            "min_ms": self.minimum(),
            "max_ms": self.maximum(),
        }


class HistogramRecorder:
    """Fixed-resolution latency histogram (HDR-style log-linear bins).

    Samples are scaled to integer units of ``resolution_ms`` and bucketed
    log-linearly: values up to ``2^(precision_bits+1)`` units land in exact
    linear bins, and each doubling beyond that shares ``2^precision_bits``
    sub-buckets, bounding the relative quantization error of percentiles to
    ``2^-precision_bits`` (~0.1 % at the default 10 bits).  ``record`` is
    O(1), memory is O(log(max) * 2^precision_bits) regardless of sample
    count, and mean / min / max are tracked exactly on the side.
    """

    __slots__ = ("name", "resolution_ms", "precision_bits", "_inv_resolution",
                 "_half", "_counts", "_count", "_sum", "_sum_sq", "_min",
                 "_max", "_cumulative")

    def __init__(self, name: str = "", resolution_ms: float = 0.001,
                 precision_bits: int = 10) -> None:
        if resolution_ms <= 0:
            raise ValueError("resolution must be positive")
        if not 1 <= precision_bits <= 14:
            raise ValueError("precision_bits must be in [1, 14]")
        self.name = name
        self.resolution_ms = resolution_ms
        self.precision_bits = precision_bits
        self._inv_resolution = 1.0 / resolution_ms
        self._half = 1 << precision_bits
        self._counts: List[int] = []
        self._count = 0
        self._sum = 0.0
        self._sum_sq = 0.0
        self._min = math.inf
        self._max = 0.0
        self._cumulative: Optional[List[int]] = None

    # -- recording ---------------------------------------------------------
    def _index(self, latency_ms: float) -> int:
        units = int(latency_ms * self._inv_resolution)
        bucket = units.bit_length() - (self.precision_bits + 1)
        if bucket <= 0:
            return units
        return bucket * self._half + (units >> bucket)

    def record(self, latency_ms: float) -> None:
        if latency_ms < 0:
            raise ValueError(f"negative latency: {latency_ms}")
        # _index, inlined: recording runs once per measured completion.
        units = int(latency_ms * self._inv_resolution)
        bucket = units.bit_length() - (self.precision_bits + 1)
        if bucket <= 0:
            index = units
        else:
            index = bucket * self._half + (units >> bucket)
        counts = self._counts
        if index >= len(counts):
            counts.extend([0] * (index + 1 - len(counts)))
        counts[index] += 1
        self._count += 1
        self._sum += latency_ms
        self._sum_sq += latency_ms * latency_ms
        if latency_ms < self._min:
            self._min = latency_ms
        if latency_ms > self._max:
            self._max = latency_ms
        self._cumulative = None

    def extend(self, latencies: Iterable[float]) -> None:
        for value in latencies:
            self.record(value)

    def merge(self, other: "HistogramRecorder") -> None:
        """Combine another histogram recorded at the same resolution."""
        if (other.resolution_ms != self.resolution_ms
                or other.precision_bits != self.precision_bits):
            raise ValueError("cannot merge histograms with different "
                             "resolution or precision")
        counts = self._counts
        if len(other._counts) > len(counts):
            counts.extend([0] * (len(other._counts) - len(counts)))
        for index, value in enumerate(other._counts):
            if value:
                counts[index] += value
        self._count += other._count
        self._sum += other._sum
        self._sum_sq += other._sum_sq
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._cumulative = None

    # -- summaries ---------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    def mean(self) -> float:
        if not self._count:
            return 0.0
        return self._sum / self._count

    def minimum(self) -> float:
        return self._min if self._count else 0.0

    def maximum(self) -> float:
        return self._max if self._count else 0.0

    def stddev(self) -> float:
        if self._count < 2:
            return 0.0
        mu = self.mean()
        variance = (self._sum_sq - self._count * mu * mu) / (self._count - 1)
        return math.sqrt(max(0.0, variance))

    def _bin_value(self, index: int) -> float:
        """Midpoint of the value range a bin covers, in milliseconds."""
        bucket = index // self._half
        sub = index - bucket * self._half
        if bucket <= 1:
            units = index
            width = 1
        else:
            shift = bucket - 1
            units = (sub + self._half) << shift
            width = 1 << shift
        return (units + (width - 1) / 2.0) * self.resolution_ms

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0 < p <= 100), quantized to bin midpoints
        (relative error bounded by ``2^-precision_bits``); min and max are
        returned exactly at the extremes."""
        if not self._count:
            return 0.0
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if p == 100:
            return self._max
        if self._cumulative is None:
            running = 0
            self._cumulative = cumulative = []
            for value in self._counts:
                running += value
                cumulative.append(running)
        cumulative = self._cumulative
        target = math.ceil((p / 100.0) * self._count)
        # Binary search for the first bin whose cumulative count reaches it.
        low, high = 0, len(cumulative) - 1
        while low < high:
            mid = (low + high) // 2
            if cumulative[mid] < target:
                low = mid + 1
            else:
                high = mid
        # Clamp the bin midpoint to the exactly-tracked extremes so the
        # extreme percentiles return the true min/max.
        value = self._bin_value(low)
        return min(max(value, self._min), self._max)

    def p50(self) -> float:
        return self.percentile(50)

    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> dict:
        """Mean / p50 / p99 / min / max / count in one dictionary."""
        return {
            "name": self.name,
            "count": self.count,
            "mean_ms": self.mean(),
            "p50_ms": self.p50(),
            "p99_ms": self.p99(),
            "min_ms": self.minimum(),
            "max_ms": self.maximum(),
        }
