#!/usr/bin/env python
"""Twissandra timelines with speculative prefetching (Section 6.3.1).

``get_timeline`` first fetches the timeline (a list of tweet IDs) and then
fetches each tweet.  With ICG, the tweets are prefetched on the preliminary
timeline view; the example measures how much of the strong read's latency
that hides, including when a new tweet is posted concurrently.

Run with::

    python examples/twissandra_timeline.py
"""

from repro.apps.datasets import TwissandraDataset
from repro.apps.twissandra import Twissandra
from repro.bindings.cassandra import CassandraBinding
from repro.cassandra_sim.cluster import CassandraCluster
from repro.cassandra_sim.config import CassandraConfig
from repro.core import CorrectableClient
from repro.sim.environment import SimEnvironment
from repro.sim.topology import Region, replica_regions_twissandra


def main() -> None:
    env = SimEnvironment(seed=5)
    dataset = TwissandraDataset(user_count=200, tweet_count=600, seed=5)
    # The paper's Twissandra deployment uses Virginia / N. California / Oregon
    # replicas with the client still in Ireland.
    cluster = CassandraCluster(env, CassandraConfig(),
                               replica_regions=replica_regions_twissandra())
    cluster.preload(dataset.initial_items())
    node = cluster.add_client("web-frontend", region=Region.IRL,
                              contact_region=Region.VRG)
    app = Twissandra(CorrectableClient(CassandraBinding(node)), dataset)

    timeline = "timeline:42"
    print(f"{timeline} has {len(dataset.timeline(timeline))} tweets\n")

    app.get_timeline(timeline,
                     lambda info: print(f"baseline get_timeline:    "
                                        f"{info['latency_ms']:.1f} ms"),
                     speculate=False)
    env.run_until_idle()

    app.get_timeline(timeline,
                     lambda info: print(f"speculative get_timeline: "
                                        f"{info['latency_ms']:.1f} ms"))
    env.run_until_idle()

    print("\nposting a tweet, then reading the timeline again ...")
    app.post_tweet(timeline, "hot take: incremental consistency is useful",
                   lambda info: print(f"post_tweet completed in "
                                      f"{info['latency_ms']:.1f} ms"))
    env.run_until_idle()

    app.get_timeline(timeline,
                     lambda info: print(f"timeline now starts with: "
                                        f"{info['tweets'][0][:40]!r}..."))
    env.run_until_idle()

    stats = app.speculation_stats
    print(f"\nspeculation stats: confirmed={stats.confirmed} "
          f"misspeculations={stats.misspeculations}")


if __name__ == "__main__":
    main()
