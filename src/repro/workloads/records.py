"""Dataset generation: YCSB-style records.

YCSB stores records named ``user0 .. userN`` with fixed-size values; the
divergence experiments use a deliberately small dataset (1 K records) so
that read activity concentrates on a hot set.
"""

from __future__ import annotations

import random
import string
from typing import Dict, List

_PRINTABLE = string.ascii_letters + string.digits


def make_value(rng: random.Random, size_bytes: int = 100) -> str:
    """A random printable string of ``size_bytes`` characters."""
    if size_bytes <= 0:
        raise ValueError("value size must be positive")
    return "".join(rng.choice(_PRINTABLE) for _ in range(size_bytes))


class Dataset:
    """A named collection of YCSB records."""

    def __init__(self, record_count: int = 1000, value_size_bytes: int = 100,
                 key_prefix: str = "user", seed: int = 0) -> None:
        if record_count <= 0:
            raise ValueError("record_count must be positive")
        self.record_count = record_count
        self.value_size_bytes = value_size_bytes
        self.key_prefix = key_prefix
        self._rng = random.Random(seed)

    def key(self, index: int) -> str:
        """The key of record ``index``."""
        if not 0 <= index < self.record_count:
            raise IndexError(f"record index out of range: {index}")
        return f"{self.key_prefix}{index}"

    def keys(self) -> List[str]:
        return [self.key(i) for i in range(self.record_count)]

    def initial_value(self, index: int) -> str:
        """A deterministic initial value for record ``index``."""
        rng = random.Random((index + 1) * 2654435761)
        return make_value(rng, self.value_size_bytes)

    def initial_items(self) -> Dict[str, str]:
        """Key → value mapping used to preload a cluster."""
        return {self.key(i): self.initial_value(i)
                for i in range(self.record_count)}

    def random_value(self) -> str:
        """A fresh value for an update operation."""
        return make_value(self._rng, self.value_size_bytes)
