"""Tests for the ad-serving and Twissandra case-study applications.

These run against the in-memory LocalBinding (fast, no cluster) to check the
application logic — speculation wiring, misspeculation handling, updates —
and against the simulated Cassandra cluster in the integration tests.
"""

import pytest

from repro.apps.ads import AdServingSystem
from repro.apps.datasets import AdsDataset, TwissandraDataset
from repro.apps.twissandra import Twissandra
from repro.bindings.local import LocalBinding
from repro.core.client import CorrectableClient
from repro.sim.scheduler import Scheduler


def _ads_app(scheduler=None, stale_probability=0.0):
    dataset = AdsDataset(profile_count=20, ad_count=50, max_ads_per_profile=5,
                         seed=1)
    binding = LocalBinding(scheduler=scheduler, weak_delay_ms=2,
                           strong_delay_ms=40,
                           stale_probability=stale_probability)
    for key, value in dataset.initial_items().items():
        binding.store.put(key, value)
    app = AdServingSystem(CorrectableClient(binding), dataset)
    return app, binding, dataset


def _twissandra_app(scheduler=None):
    dataset = TwissandraDataset(user_count=20, tweet_count=60, seed=1)
    binding = LocalBinding(scheduler=scheduler, weak_delay_ms=2,
                           strong_delay_ms=40)
    for key, value in dataset.initial_items().items():
        binding.store.put(key, value)
    app = Twissandra(CorrectableClient(binding), dataset)
    return app, binding, dataset


class TestAdServing:
    def test_fetch_returns_post_processed_ads(self):
        app, binding, dataset = _ads_app()
        results = []
        app.fetch_ads_by_user_id("profile:0", results.append)
        ads = results[0]["ads"]
        refs = dataset.ad_refs("profile:0")
        assert len(ads) == len(refs)
        assert all(ad.startswith("<ad>") for ad in ads)
        assert results[0]["speculation_confirmed"]

    def test_fetch_without_speculation(self):
        app, _, dataset = _ads_app()
        results = []
        app.fetch_ads_by_user_id("profile:1", results.append, speculate=False)
        assert len(results[0]["ads"]) == len(dataset.ad_refs("profile:1"))
        assert app.speculation_stats.speculations_started == 0

    def test_misspeculation_detected_and_resolved(self):
        scheduler = Scheduler()
        app, binding, dataset = _ads_app(scheduler=scheduler)
        # Change the profile under the reader's feet: the weak view (old refs)
        # will differ from the strong view (new refs).
        new_refs = ["ad:1", "ad:2"]
        results = []
        app.fetch_ads_by_user_id("profile:2", results.append)
        scheduler.schedule(10, binding.store.put, "profile:2", new_refs)
        scheduler.run_until_idle()
        assert len(results[0]["ads"]) == 2
        assert not results[0]["speculation_confirmed"]
        assert app.speculation_stats.misspeculations == 1

    def test_speculation_latency_benefit(self):
        """With ICG the prefetch overlaps the strong read of the references."""
        latencies = {}
        for speculate in (True, False):
            scheduler = Scheduler()
            app, _, _ = _ads_app(scheduler=scheduler)
            results = []
            app.fetch_ads_by_user_id("profile:3", results.append,
                                     speculate=speculate)
            scheduler.run_until_idle()
            latencies[speculate] = results[0]["latency_ms"]
        assert latencies[True] < latencies[False]

    def test_update_profile_changes_refs(self):
        app, binding, _ = _ads_app()
        done = []
        app.update_profile("profile:4", done.append)
        assert done and binding.store.get("profile:4") == done[0]["refs"]

    def test_operation_counter(self):
        app, _, _ = _ads_app()
        app.fetch_ads_by_user_id("profile:0", lambda info: None)
        app.fetch_ads_by_user_id("profile:1", lambda info: None)
        assert app.operations == 2

    def test_empty_reference_list(self):
        app, binding, _ = _ads_app()
        binding.store.put("profile:5", [])
        results = []
        app.fetch_ads_by_user_id("profile:5", results.append)
        assert results[0]["ads"] == []


class TestTwissandra:
    def test_get_timeline_fetches_tweet_bodies(self):
        app, _, dataset = _twissandra_app()
        results = []
        app.get_timeline("timeline:0", results.append)
        timeline = dataset.timeline("timeline:0")
        assert len(results[0]["tweets"]) == len(timeline)
        assert results[0]["tweets"][0] == dataset.tweet_body(timeline[0])

    def test_get_timeline_baseline_matches_speculative_content(self):
        app, _, _ = _twissandra_app()
        speculative, baseline = [], []
        app.get_timeline("timeline:1", speculative.append, speculate=True)
        app.get_timeline("timeline:1", baseline.append, speculate=False)
        assert speculative[0]["tweets"] == baseline[0]["tweets"]

    def test_post_tweet_prepends_to_timeline(self):
        scheduler = Scheduler()
        app, binding, _ = _twissandra_app(scheduler=scheduler)
        done = []
        app.post_tweet("timeline:2", "hello from the test", done.append)
        scheduler.run_until_idle()
        assert done
        stored_timeline = binding.store.get("timeline:2")
        assert stored_timeline[0] == done[0]["tweet_key"]
        assert binding.store.get(done[0]["tweet_key"]) == "hello from the test"

    def test_timeline_capped_at_configured_length(self):
        scheduler = Scheduler()
        app, binding, dataset = _twissandra_app(scheduler=scheduler)
        for i in range(dataset.timeline_length + 5):
            app.post_tweet("timeline:3", f"tweet {i}")
            scheduler.run_until_idle()
        assert len(binding.store.get("timeline:3")) <= dataset.timeline_length

    def test_speculation_latency_benefit(self):
        latencies = {}
        for speculate in (True, False):
            scheduler = Scheduler()
            app, _, _ = _twissandra_app(scheduler=scheduler)
            results = []
            app.get_timeline("timeline:4", results.append, speculate=speculate)
            scheduler.run_until_idle()
            latencies[speculate] = results[0]["latency_ms"]
        assert latencies[True] < latencies[False]

    def test_random_timeline_key_in_range(self):
        app, _, dataset = _twissandra_app()
        for _ in range(20):
            key = app.random_timeline_key()
            assert key in dataset.timeline_keys()
