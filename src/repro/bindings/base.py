"""The binding API (Section 5.1).

A binding exposes exactly two methods to the library:

* :meth:`Binding.consistency_levels` — the levels the underlying stack
  offers, ordered weakest to strongest;
* :meth:`Binding.submit_operation` — execute an operation and invoke the
  callback once per requested level as results become available.

The callback signature is ``callback(level, value, metadata=None, error=None)``:

* ``level`` — the :class:`~repro.core.consistency.ConsistencyLevel` this
  result satisfies;
* ``value`` — the operation result at that level;
* ``metadata`` — optional dict (answering replica, quorum size, bytes on the
  wire, ``is_confirmation`` for the ``*CC`` optimization, ...);
* ``error`` — an exception if the operation failed at that level; when set,
  ``value`` is ignored.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Optional

from repro.core.consistency import ConsistencyLevel
from repro.core.operations import Operation

#: ``callback(level, value, metadata=None, error=None)``
CallbackType = Callable[..., None]


class Binding(abc.ABC):
    """Abstract base class every storage binding implements."""

    #: Optional callable returning the current time (simulated or wall-clock);
    #: the client uses it to timestamp views.
    clock: Optional[Callable[[], float]] = None

    @abc.abstractmethod
    def consistency_levels(self) -> List[ConsistencyLevel]:
        """The levels this binding offers, ordered weakest to strongest."""

    @abc.abstractmethod
    def submit_operation(self, operation: Operation,
                         levels: List[ConsistencyLevel],
                         callback: CallbackType) -> None:
        """Execute ``operation``, invoking ``callback`` once per level in ``levels``."""

    def supports(self, level: ConsistencyLevel) -> bool:
        """Whether this binding offers ``level``."""
        return level in self.consistency_levels()
