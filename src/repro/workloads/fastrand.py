"""Chunked random-draw streams that reproduce ``random.Random`` bit-for-bit.

This module is the *determinism seam* between the per-draw ``random.Random``
API the simulator was written against and the vectorized load generators the
perf work needs.  A stream hands out **blocks** of draws (doubles, bounded
ints, printable characters) whose values — and whose consumption of the
underlying Mersenne Twister word sequence — are exactly what a per-draw loop
over the same ``Random`` instance would have produced.  Golden event traces
and committed figure tables therefore cannot tell the two apart.

Two backends implement the same small interface:

* :class:`MirrorStream` (numpy, auto-detected): transfers the ``Random``'s
  MT19937 state into a ``numpy.random.MT19937`` **once** and from then on
  generates raw 32-bit words in C.  ``random.Random.random()`` is built from
  two words as ``((w0 >> 5) << 26 | (w1 >> 6)) * 2**-53`` and
  ``getrandbits(k)`` (k <= 32) is ``word >> (32 - k)`` — pure integer
  pipelines that vectorize exactly.  Deliberately *not* vectorized: any
  transcendental math (``**``, ``log``); numpy's SIMD ``pow``/``log`` differ
  from scalar libm by 1 ulp on a few percent of inputs, which would
  eventually flip a truncated Zipfian index and break a golden hash.  The
  nonlinear transforms stay scalar Python on top of exact vectorized words.
* :class:`PureStream` (``array``-module baseline, always available): draws
  per-call from the source ``Random`` into ``array('d')`` / ``array('Q')``
  chunks.  Same values trivially; the chunking still amortizes attribute
  lookups in the consumers.

A ``MirrorStream`` becomes the *authoritative* owner of its source's
randomness: the source ``Random`` is left untouched (stale) after the state
transfer, so a consumer must route **every** subsequent draw through the
stream.  :meth:`MirrorStream.sync` writes the post-consumption state back
into the source, which the equivalence tests use to prove the two backends
leave the generator in identical states.
"""

from __future__ import annotations

import random
from array import array
from math import log as _log
from typing import List, Optional, Sequence, Union

try:  # pragma: no cover - exercised indirectly by backend tests
    import numpy as _np
    from numpy.random import MT19937 as _MT19937
    HAVE_NUMPY = True
except Exception:  # pragma: no cover - numpy is present in CI
    _np = None
    _MT19937 = None
    HAVE_NUMPY = False

#: Name of the fastest available backend ("numpy" or "array").
BACKEND = "numpy" if HAVE_NUMPY else "array"

#: Raw 32-bit words pulled from the mirror per refill.  8192 words is ~25us
#: of ``random_raw`` and covers ~4096 ``random()`` doubles.
_WORD_BLOCK = 8192

_INV_2_53 = 1.0 / 9007199254740992.0  # 2**-53


def vectorizable(rng: random.Random) -> bool:
    """True when ``rng`` can be mirrored word-exactly by the numpy backend.

    Subclasses of ``random.Random`` may override ``random``/``getrandbits``,
    so only exact ``random.Random`` instances qualify.
    """
    return HAVE_NUMPY and type(rng) is random.Random


class PureStream:
    """The ``array``-module baseline backend: per-draw, chunked storage.

    Draws flow through the source ``Random`` itself, so the source state is
    always current and :meth:`sync` is a no-op.
    """

    __slots__ = ("_source",)

    backend = "array"

    def __init__(self, source: random.Random) -> None:
        self._source = source

    def doubles(self, n: int) -> Sequence[float]:
        """``[source.random() for _ in range(n)]`` as an ``array('d')``."""
        rnd = self._source.random
        return array("d", [rnd() for _ in range(n)])

    def accepted(self, n: int, bits: int, limit: int) -> Sequence[int]:
        """``n`` accepted draws of ``getrandbits(bits)`` rejecting >= limit.

        This is the word pattern of both ``Random.choice`` (via
        ``_randbelow``) and ``Random.randrange``.
        """
        getrandbits = self._source.getrandbits
        out = array("Q", bytes(8 * n))
        for i in range(n):
            r = getrandbits(bits)
            while r >= limit:
                r = getrandbits(bits)
            out[i] = r
        return out

    def chars(self, n: int, table: str) -> str:
        """``n`` characters drawn exactly like ``Random.choice(table)``."""
        bits = len(table).bit_length()
        return "".join([table[r] for r in self.accepted(n, bits, len(table))])

    def sync(self) -> None:
        """The source is already current (draws went through it)."""

    def close(self) -> None:
        """Release the stream; the source keeps its current state."""


class MirrorStream:
    """numpy MT19937 mirror of a ``random.Random`` — exact, authoritative.

    The mirror buffers raw words internally so rejection sampling consumes
    *exactly* as many words as the per-draw loop would; leftover words feed
    the next request.  ``_consumed`` counts words handed to consumers, which
    lets :meth:`sync` reconstruct the precise ``Random`` state the per-draw
    equivalent would have reached (the mirror itself may have generated a
    partial block ahead).
    """

    __slots__ = ("_source", "_mt", "_buf", "_pos", "_origin", "_consumed")

    backend = "numpy"

    def __init__(self, source: random.Random) -> None:
        if not vectorizable(source):
            raise TypeError("MirrorStream requires numpy and a plain "
                            "random.Random instance")
        state = source.getstate()
        self._source = source
        self._origin = state
        self._consumed = 0
        self._mt = self._mt_from(state)
        self._buf = None
        self._pos = 0

    @staticmethod
    def _mt_from(state) -> "_MT19937":
        mt = _MT19937()
        mt.state = {
            "bit_generator": "MT19937",
            "state": {
                "key": _np.fromiter(state[1][:-1], dtype=_np.uint32,
                                    count=624),
                "pos": state[1][-1],
            },
        }
        return mt

    def _available(self) -> int:
        return 0 if self._buf is None else len(self._buf) - self._pos

    def _refill(self, at_least: int) -> None:
        block = self._mt.random_raw(max(at_least, _WORD_BLOCK))
        if self._available():
            self._buf = _np.concatenate((self._buf[self._pos:], block))
        else:
            self._buf = block
        self._pos = 0

    def _take_words(self, n: int) -> "_np.ndarray":
        if self._available() < n:
            self._refill(n - self._available())
        pos = self._pos
        self._pos = pos + n
        self._consumed += n
        return self._buf[pos:pos + n]

    def doubles(self, n: int) -> List[float]:
        """``[source.random() for _ in range(n)]``, bit-exact."""
        w = self._take_words(2 * n)
        hi = (w[0::2] >> 5) << 26
        vals = ((hi + (w[1::2] >> 6)).astype(_np.float64)) * _INV_2_53
        return vals.tolist()

    def accepted(self, n: int, bits: int, limit: int) -> "_np.ndarray":
        """``n`` accepted ``getrandbits(bits)`` draws rejecting >= limit."""
        shift = 32 - bits
        out = _np.empty(n, dtype=_np.uint64)
        filled = 0
        while filled < n:
            if not self._available():
                # Expected acceptance rate is limit / 2**bits; over-pull a
                # little so one refill usually suffices.  Unused words stay
                # buffered — consumption accounting remains exact.
                want = int((n - filled) * ((1 << bits) / limit)) + 16
                self._refill(want)
            vals = self._buf[self._pos:] >> shift
            mask = vals < limit
            hits = int(mask.sum())
            if filled + hits >= n:
                need = n - filled
                positions = _np.nonzero(mask)[0]
                used = int(positions[need - 1]) + 1
                out[filled:n] = vals[mask][:need]
                self._pos += used
                self._consumed += used
                filled = n
            else:
                if hits:
                    out[filled:filled + hits] = vals[mask]
                    filled += hits
                taken = len(self._buf) - self._pos
                self._pos = len(self._buf)
                self._consumed += taken
        return out

    def chars(self, n: int, table: str) -> str:
        """``n`` characters drawn exactly like ``Random.choice(table)``."""
        bits = len(table).bit_length()
        acc = self.accepted(n, bits, len(table))
        lookup = _np.frombuffer(table.encode("ascii"), dtype=_np.uint8)
        return lookup[acc.astype(_np.intp)].tobytes().decode("ascii")

    def sync(self) -> None:
        """Write the consumed-draw state back into the source ``Random``.

        The mirror may have generated words beyond what consumers took;
        replaying ``_consumed`` words from the origin state lands the source
        exactly where the per-draw loop would have left it.
        """
        mt = self._mt_from(self._origin)
        if self._consumed:
            mt.random_raw(self._consumed)
        inner = mt.state["state"]
        self._source.setstate(
            (3, tuple(inner["key"].tolist()) + (int(inner["pos"]),),
             self._origin[2]))

    def close(self) -> None:
        """Sync the source and drop the buffered lookahead."""
        self.sync()
        self._buf = None
        self._pos = 0


Stream = Union[MirrorStream, PureStream]


def make_stream(rng: random.Random,
                backend: Optional[str] = None) -> Stream:
    """The fastest exact stream for ``rng`` (or a specific ``backend``)."""
    if backend not in (None, "numpy", "array"):
        raise ValueError(f"unknown fastrand backend: {backend!r}")
    if backend == "numpy" or (backend is None and vectorizable(rng)):
        return MirrorStream(rng)
    return PureStream(rng)


def exponential_gaps(stream: Stream, n: int, rate_per_ms: float) -> List[float]:
    """``n`` draws of ``Random.expovariate(rate_per_ms)``, bit-exact.

    CPython computes ``-log(1 - random()) / lambd``; the ``log`` stays
    scalar ``math.log`` (see module docstring), only the uniform draws are
    vectorized.
    """
    inv = rate_per_ms
    return [-_log(1.0 - u) / inv for u in stream.doubles(n)]
