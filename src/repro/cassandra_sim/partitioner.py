"""Consistent-hashing ring partitioner.

Maps every key to an ordered preference list of ``replication_factor``
replicas.  With the paper's setup (3 nodes, RF = 3) every node owns every
key, but the ring is implemented faithfully so clusters larger than the
replication factor behave correctly too.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import List, Sequence


def _hash_token(value: str) -> int:
    digest = hashlib.md5(value.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RingPartitioner:
    """Consistent hashing with virtual nodes."""

    def __init__(self, node_names: Sequence[str], replication_factor: int,
                 vnodes_per_node: int = 8) -> None:
        if not node_names:
            raise ValueError("partitioner needs at least one node")
        if replication_factor <= 0:
            raise ValueError("replication factor must be positive")
        if replication_factor > len(node_names):
            raise ValueError(
                f"replication factor {replication_factor} exceeds cluster "
                f"size {len(node_names)}")
        self.node_names = list(node_names)
        self.replication_factor = replication_factor
        self._ring: List[tuple] = []
        for name in self.node_names:
            for vnode in range(vnodes_per_node):
                token = _hash_token(f"{name}#{vnode}")
                self._ring.append((token, name))
        self._ring.sort()
        self._tokens = [token for token, _ in self._ring]
        # The ring is immutable after construction, so preference lists are
        # pure functions of the key and can be cached (hot path: every
        # coordinated read/write hashes its key).
        self._preference_cache: dict = {}

    def replicas_for(self, key: str) -> List[str]:
        """The ordered preference list of replicas responsible for ``key``.

        The returned list is cached and shared — treat it as read-only.
        """
        cached = self._preference_cache.get(key)
        if cached is not None:
            return cached
        token = _hash_token(key)
        start = bisect_right(self._tokens, token) % len(self._ring)
        replicas: List[str] = []
        index = start
        while len(replicas) < self.replication_factor:
            _, name = self._ring[index]
            if name not in replicas:
                replicas.append(name)
            index = (index + 1) % len(self._ring)
        if len(self._preference_cache) >= 65536:
            self._preference_cache.clear()
        self._preference_cache[key] = replicas
        return replicas

    def primary_for(self, key: str) -> str:
        """The first replica in the preference list for ``key``."""
        return self.replicas_for(key)[0]

    def is_replica(self, node_name: str, key: str) -> bool:
        return node_name in self.replicas_for(key)
