"""Declarative fault scripts.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent` entries —
"crash node X at t=2000 ms", "partition regions A/B from t=1000 to t=4000" —
that a :class:`~repro.faults.injector.FaultInjector` replays against a live
:class:`~repro.sim.environment.SimEnvironment`.  A :class:`Scenario` wraps a
schedule with a name and a description so experiments can refer to fault
patterns symbolically (see :mod:`repro.faults.scenarios`).

Targets are *selectors*, not raw node names: deployments differ, so a
schedule says ``"replica:0"`` or ``"leader"`` and the injector resolves the
selector through the alias table it was built with.  Region endpoints use the
``"region:<name>"`` form and pass through unresolved.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List, Tuple

#: Actions understood by the injector, with the operands they use.
#:
#: ``crash`` / ``recover`` / ``slow`` / ``restore_speed``  — ``target`` only
#: (``slow`` also reads ``value`` as the slowdown factor);
#: ``partition`` / ``heal`` / ``degrade_link`` / ``restore_link`` — ``target``
#: and ``peer`` endpoints (``degrade_link`` reads ``value`` as extra ms).
ACTIONS = frozenset({
    "crash", "recover",
    "partition", "heal",
    "degrade_link", "restore_link",
    "slow", "restore_speed",
})

#: Actions that require a second endpoint.
_PAIR_ACTIONS = frozenset({"partition", "heal", "degrade_link", "restore_link"})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action, relative to the schedule's arming time."""

    at_ms: float
    action: str
    target: str
    peer: str = ""
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ValueError(f"fault time must be non-negative, got {self.at_ms}")
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; "
                             f"choose from {sorted(ACTIONS)}")
        if not self.target:
            raise ValueError("fault event needs a target selector")
        if self.action in _PAIR_ACTIONS and not self.peer:
            raise ValueError(f"action {self.action!r} needs a peer endpoint")
        if self.action == "slow" and self.value <= 0:
            raise ValueError("slow action needs a positive factor in 'value'")
        if self.action == "degrade_link" and self.value < 0:
            raise ValueError("degrade_link needs a non-negative 'value' (ms)")


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-ordered sequence of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.events, key=lambda e: e.at_ms))
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def duration_ms(self) -> float:
        """Time of the last event (0 for an empty schedule)."""
        return self.events[-1].at_ms if self.events else 0.0

    def shifted(self, offset_ms: float) -> "FaultSchedule":
        """The same schedule with every event time moved by ``offset_ms``."""
        return FaultSchedule(tuple(replace(e, at_ms=e.at_ms + offset_ms)
                                   for e in self.events))

    def merged(self, other: "FaultSchedule") -> "FaultSchedule":
        """A schedule combining this one's events with ``other``'s."""
        return FaultSchedule(self.events + other.events)

    @staticmethod
    def of(events: Iterable[FaultEvent]) -> "FaultSchedule":
        return FaultSchedule(tuple(events))


class FaultScheduleBuilder:
    """Fluent construction of common crash/partition windows.

    Example::

        schedule = (FaultScheduleBuilder()
                    .crash_window("replica:1", at_ms=2_000, duration_ms=3_000)
                    .partition_window("region:eu-west-1", "region:us-east-1",
                                      at_ms=1_000, duration_ms=2_000)
                    .build())
    """

    def __init__(self) -> None:
        self._events: List[FaultEvent] = []

    def add(self, event: FaultEvent) -> "FaultScheduleBuilder":
        self._events.append(event)
        return self

    def crash(self, target: str, at_ms: float) -> "FaultScheduleBuilder":
        return self.add(FaultEvent(at_ms, "crash", target))

    def recover(self, target: str, at_ms: float) -> "FaultScheduleBuilder":
        return self.add(FaultEvent(at_ms, "recover", target))

    def crash_window(self, target: str, at_ms: float,
                     duration_ms: float) -> "FaultScheduleBuilder":
        """Crash ``target`` at ``at_ms`` and recover it ``duration_ms`` later."""
        self.crash(target, at_ms)
        return self.recover(target, at_ms + duration_ms)

    def partition_window(self, endpoint_a: str, endpoint_b: str, at_ms: float,
                         duration_ms: float) -> "FaultScheduleBuilder":
        """Partition two endpoints at ``at_ms``, heal ``duration_ms`` later."""
        self.add(FaultEvent(at_ms, "partition", endpoint_a, peer=endpoint_b))
        return self.add(FaultEvent(at_ms + duration_ms, "heal",
                                   endpoint_a, peer=endpoint_b))

    def flapping(self, endpoint_a: str, endpoint_b: str, at_ms: float,
                 up_ms: float, down_ms: float,
                 cycles: int) -> "FaultScheduleBuilder":
        """``cycles`` repetitions of down-for-``down_ms`` / up-for-``up_ms``."""
        t = at_ms
        for _ in range(cycles):
            self.partition_window(endpoint_a, endpoint_b, t, down_ms)
            t += down_ms + up_ms
        return self

    def degrade_window(self, endpoint_a: str, endpoint_b: str, at_ms: float,
                       duration_ms: float,
                       extra_ms: float) -> "FaultScheduleBuilder":
        """Add ``extra_ms`` one-way latency to a link for ``duration_ms``."""
        self.add(FaultEvent(at_ms, "degrade_link", endpoint_a,
                            peer=endpoint_b, value=extra_ms))
        return self.add(FaultEvent(at_ms + duration_ms, "restore_link",
                                   endpoint_a, peer=endpoint_b))

    def slow_window(self, target: str, at_ms: float, duration_ms: float,
                    factor: float) -> "FaultScheduleBuilder":
        """Slow ``target`` by ``factor`` for ``duration_ms``."""
        self.add(FaultEvent(at_ms, "slow", target, value=factor))
        return self.add(FaultEvent(at_ms + duration_ms, "restore_speed", target))

    def build(self) -> FaultSchedule:
        return FaultSchedule.of(self._events)


@dataclass(frozen=True)
class Scenario:
    """A named, reusable fault pattern."""

    name: str
    description: str
    schedule: FaultSchedule = field(default_factory=FaultSchedule)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
