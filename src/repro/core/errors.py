"""Exception hierarchy for the Correctables library."""

from __future__ import annotations


class CorrectableError(Exception):
    """Base class for every error raised by the library."""


class OperationError(CorrectableError):
    """An operation failed at the storage layer (e.g. key missing, rejected)."""


class UnsupportedOperationError(OperationError):
    """A binding was asked to execute an operation kind it does not implement.

    Every binding raises (or delivers through its callback) this one type,
    with a uniform message, instead of hand-rolling its own ``OperationError``
    string — callers can catch it specifically to fall back to another
    binding.
    """

    def __init__(self, binding_name: str, operation_name: str) -> None:
        super().__init__(
            f"{binding_name} does not support operation {operation_name!r}")
        self.binding_name = binding_name
        self.operation_name = operation_name


class BindingError(CorrectableError):
    """A binding was misused or misbehaved (wrong level, duplicate close, ...)."""


class UnsupportedConsistencyError(BindingError):
    """The application requested a level the binding does not provide."""

    def __init__(self, requested, available) -> None:
        super().__init__(
            f"requested consistency level(s) {requested} not offered by "
            f"binding (available: {available})"
        )
        self.requested = requested
        self.available = available


class InvalidStateError(CorrectableError):
    """A Correctable or Promise was driven through an illegal transition."""


class TimeoutError_(CorrectableError):
    """An operation did not complete within its deadline."""
