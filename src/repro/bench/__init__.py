"""Experiment harnesses regenerating every figure of the paper's evaluation.

Each ``figNN_*`` module exposes a ``run_*`` function returning structured
results plus a ``format_report`` helper that prints the same rows/series the
corresponding figure shows.  The pytest-benchmark wrappers in ``benchmarks/``
call these with scaled-down defaults; pass larger parameters for
paper-scale runs.
"""

from repro.bench import ablations, common, perf, sweep
from repro.bench.fig05_single_latency import run_fig05, format_fig05
from repro.bench.fig06_load import run_fig06, format_fig06
from repro.bench.fig07_divergence import run_fig07, format_fig07
from repro.bench.fig08_bandwidth import run_fig08, format_fig08
from repro.bench.fig09_zk_latency import run_fig09, format_fig09
from repro.bench.fig10_zk_bandwidth import run_fig10, format_fig10
from repro.bench.fig11_apps import run_fig11, format_fig11
from repro.bench.fig12_tickets import run_fig12, format_fig12
from repro.bench.fig13_faults import (
    run_fig13,
    run_fig13_all,
    run_fig13_zookeeper,
    format_fig13,
)
from repro.bench.fig14_open_loop import run_fig14, format_fig14
from repro.bench.fig15_rebalance import run_fig15, format_fig15
from repro.bench.fig16_txn import run_fig16, format_fig16

__all__ = [
    "ablations",
    "common",
    "perf",
    "sweep",
    "run_fig05", "format_fig05",
    "run_fig06", "format_fig06",
    "run_fig07", "format_fig07",
    "run_fig08", "format_fig08",
    "run_fig09", "format_fig09",
    "run_fig10", "format_fig10",
    "run_fig11", "format_fig11",
    "run_fig12", "format_fig12",
    "run_fig13", "run_fig13_all", "run_fig13_zookeeper", "format_fig13",
    "run_fig14", "format_fig14",
    "run_fig15", "format_fig15",
    "run_fig16", "format_fig16",
]
