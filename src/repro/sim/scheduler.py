"""Event scheduler: the heart of the discrete-event simulation.

Events are callbacks ordered by (time, sequence-number).  The sequence number
makes execution order deterministic for events scheduled at the same instant,
which in turn makes every experiment in :mod:`repro.bench` reproducible.

The heap stores plain ``(time, seq, fn, args, kwargs, marker)`` tuples so
ordering is decided by C-level tuple comparison on the first two fields
(``seq`` is unique, so nothing beyond it is ever compared).  Three write
paths feed it:

* :meth:`Scheduler.schedule` / :meth:`Scheduler.schedule_at` return an
  :class:`Event` handle (stored in the marker slot) so callers can cancel
  pending work (timeouts);
* :meth:`Scheduler.schedule_call` / :meth:`Scheduler.schedule_call_at` are
  the fire-and-forget fast path — no handle, no kwargs mapping, and no
  per-event object allocation.  Message deliveries and processing-queue
  jobs (the dominant event classes) use it;
* :meth:`Scheduler.schedule_batch_at` coalesces same-timestamp callbacks
  (a coordinator's multi-replica fan-out) into **one** heap entry holding
  the whole batch, drained in order by :meth:`run`.  The batch occupies
  consecutive sequence numbers, each callback still executes — and is
  traced — as its own event, so execution order, event counts, and golden
  ``(time, seq)`` traces are identical to individual pushes; only the heap
  traffic is amortized.

Live-event accounting is incremental: scheduling increments a live counter,
execution and cancellation decrement it, so ``pending(live_only=True)`` —
the runner idle check — is O(1) with no heap scan.  Cancelled entries are
additionally purged in bulk once they outnumber live ones (amortized O(1)
per cancellation), so long fault runs with many abandoned timeouts do not
grow the heap unboundedly.
"""

from __future__ import annotations

import gc
import heapq
from typing import Any, Callable, Optional, Sequence, Tuple

from repro.sim.clock import Clock

#: Lazy-purge trigger: compact the heap once at least this many cancelled
#: events are queued *and* they outnumber the live ones.
_PURGE_THRESHOLD = 512

#: Marker-slot sentinel distinguishing a batch entry from an Event handle.
_BATCH = object()

_INFINITY = float("inf")
_NO_CAP = 1 << 62


class Event:
    """A cancellation handle for a scheduled callback.

    Instances are returned by :meth:`Scheduler.schedule` so callers can
    cancel pending work (e.g. a timeout that is no longer needed).
    """

    __slots__ = ("time", "seq", "cancelled", "_scheduler")

    def __init__(self, time: float, seq: int,
                 scheduler: Optional["Scheduler"] = None) -> None:
        self.time = time
        self.seq = seq
        self.cancelled = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when its time comes."""
        if not self.cancelled:
            self.cancelled = True
            if self._scheduler is not None:
                self._scheduler._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, seq={self.seq}, {state})"


class Scheduler:
    """Discrete-event scheduler with a simulated :class:`Clock`."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._heap: list = []  # (time, seq, fn, args, kwargs|None, marker)
        self._seq = 0
        self._events_executed = 0
        self._cancelled = 0
        self._live = 0
        self._trace: Optional[list] = None
        #: Test/debug switch: ``False`` makes :meth:`schedule_batch_at` push
        #: individual entries instead of one batch entry.  Same sequence
        #: numbers, same execution order, same traces — the determinism
        #: tests run both ways to prove it.
        self.batch_dispatch = True

    @property
    def events_executed(self) -> int:
        """Number of events run so far (useful for runaway detection)."""
        return self._events_executed

    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self.clock._now

    def pending(self, live_only: bool = False) -> int:
        """Number of callbacks still queued.

        By default this counts cancelled-but-unpopped entries too (they
        still occupy heap slots); ``live_only=True`` reports only the events
        that will actually execute.  Both are O(1): the counters are
        maintained incrementally by scheduling, cancellation, and execution
        (batch entries count every callback they carry).
        """
        if live_only:
            return self._live
        return self._live + self._cancelled

    # -- tracing (determinism fingerprints) --------------------------------
    def start_trace(self) -> list:
        """Record ``(time, seq)`` for every executed event from now on.

        Returns the (live) list the trace accumulates into; used by the
        determinism regression tests to fingerprint the exact execution
        order of a run.  Takes effect from the next :meth:`run`/:meth:`step`
        call.
        """
        self._trace = []
        return self._trace

    def stop_trace(self) -> None:
        self._trace = None

    # -- scheduling --------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any,
                 **kwargs: Any) -> Event:
        """Schedule ``fn(*args, **kwargs)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        timestamp = self.clock._now + delay
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        event = Event(timestamp, seq, self)
        heapq.heappush(self._heap,
                       (timestamp, seq, fn, args, kwargs or None, event))
        return event

    def schedule_at(self, timestamp: float, fn: Callable[..., Any],
                    *args: Any, **kwargs: Any) -> Event:
        """Schedule ``fn`` at an absolute simulated time."""
        if timestamp < self.clock._now:
            raise ValueError(
                f"cannot schedule in the past: {timestamp} < {self.now()}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        event = Event(timestamp, seq, self)
        heapq.heappush(self._heap,
                       (timestamp, seq, fn, args, kwargs or None, event))
        return event

    def schedule_call(self, delay: float, fn: Callable[..., Any],
                      args: tuple = ()) -> None:
        """Fire-and-forget :meth:`schedule`: no kwargs, no cancellation
        handle, no per-event allocation.  The hot path for message
        deliveries and queue jobs."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._heap,
                       (self.clock._now + delay, seq, fn, args, None, None))

    def schedule_call_at(self, timestamp: float, fn: Callable[..., Any],
                         args: tuple = (),
                         kwargs: Optional[dict] = None) -> None:
        """Fire-and-forget :meth:`schedule_at` (see :meth:`schedule_call`)."""
        if timestamp < self.clock._now:
            raise ValueError(
                f"cannot schedule in the past: {timestamp} < {self.now()}"
            )
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._heap,
                       (timestamp, seq, fn, args, kwargs or None, None))

    def schedule_batch_at(self, timestamp: float,
                          calls: Sequence[Tuple[Callable[..., Any], tuple]]
                          ) -> None:
        """Fire-and-forget batch: every ``(fn, args)`` runs at ``timestamp``.

        The batch takes consecutive sequence numbers in list order and is
        stored as **one** heap entry; :meth:`run` drains it callback by
        callback, tracing and counting each as its own event.  Equivalent to
        ``schedule_call_at`` per call in every observable way (use it for
        same-instant fan-outs, e.g. a write coordinator's replica
        broadcast), but with a single heap push/pop for the whole group.
        """
        count = len(calls)
        if count == 0:
            return
        if timestamp < self.clock._now:
            raise ValueError(
                f"cannot schedule in the past: {timestamp} < {self.now()}"
            )
        seq = self._seq
        heap = self._heap
        if count == 1 or not self.batch_dispatch:
            for fn, args in calls:
                heapq.heappush(heap, (timestamp, seq, fn, args, None, None))
                seq += 1
        else:
            heapq.heappush(heap,
                           (timestamp, seq, None, tuple(calls), None, _BATCH))
            seq += count
        self._seq = seq
        self._live += count

    def call_soon(self, fn: Callable[..., Any], *args: Any,
                  **kwargs: Any) -> Event:
        """Schedule ``fn`` at the current instant (after pending same-time events)."""
        return self.schedule(0.0, fn, *args, **kwargs)

    # -- cancellation bookkeeping ------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts the heap when cancelled
        entries dominate (amortized O(1) per cancellation), so abandoned
        timeouts cannot grow it unboundedly."""
        self._live -= 1
        self._cancelled += 1
        if (self._cancelled >= _PURGE_THRESHOLD
                and self._cancelled * 2 > len(self._heap)):
            # In place: the run() loop holds a reference to this list.
            self._heap[:] = [entry for entry in self._heap
                             if entry[5] is None or entry[5] is _BATCH
                             or not entry[5].cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0

    # -- execution ---------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event.

        A batch entry executes as a unit: all its callbacks run (each
        counted and traced individually) before ``step`` returns.

        Returns:
            True if an event was executed, False if the queue was empty.
        """
        while self._heap:
            entry = heapq.heappop(self._heap)
            marker = entry[5]
            if marker is not None and marker is not _BATCH:
                if marker.cancelled:
                    self._cancelled -= 1
                    continue
                # Detach: a late cancel() on an already-fired event must not
                # perturb the cancelled-entry bookkeeping.
                marker._scheduler = None
            self.clock.advance_to(entry[0])
            if marker is _BATCH:
                self._run_batch(entry)
                return True
            self._events_executed += 1
            self._live -= 1
            if self._trace is not None:
                self._trace.append((entry[0], entry[1]))
            kwargs = entry[4]
            if kwargs:
                entry[2](*entry[3], **kwargs)
            else:
                entry[2](*entry[3])
            return True
        return False

    def _run_batch(self, entry: tuple) -> None:
        """Drain one batch entry: every callback is its own traced event."""
        timestamp, first_seq = entry[0], entry[1]
        calls = entry[3]
        count = len(calls)
        trace = self._trace
        if trace is not None:
            trace.extend((timestamp, first_seq + i) for i in range(count))
        self._events_executed += count
        self._live -= count
        for fn, args in calls:
            fn(*args)

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been executed.

        ``until`` is an absolute simulated time; events scheduled strictly
        after it remain queued and the clock stops at ``until``.  A batch
        entry whose turn comes with fewer than ``len(batch)`` events of
        budget left still executes whole (``max_events`` is a runaway
        guard, not an exact quota).
        """
        heap = self._heap
        clock = self.clock
        trace = self._trace
        pop = heapq.heappop
        limit = _INFINITY if until is None else until
        cap = _NO_CAP if max_events is None else max_events
        executed = 0
        consumed = 0
        # Steady-state event execution allocates almost nothing that the
        # cyclic collector can reclaim (messages and per-op records are
        # pooled, everything else dies by refcount), so generational GC scans
        # during the drain are pure overhead.  Suspend it for the duration;
        # any cycles produced are collected when the caller's next enabled
        # collection runs.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while heap:
                entry = pop(heap)
                marker = entry[5]
                if marker is not None and marker is not _BATCH:
                    if marker.cancelled:
                        self._cancelled -= 1
                        continue
                timestamp = entry[0]
                if timestamp > limit:
                    heapq.heappush(heap, entry)
                    clock.advance_to(until)
                    return
                if executed >= cap:
                    heapq.heappush(heap, entry)
                    return
                # The heap pops in nondecreasing time order, so this direct
                # assignment cannot move the clock backwards (Clock.advance_to
                # enforces the same invariant with a per-event method call).
                clock._now = timestamp
                if marker is not None:
                    if marker is _BATCH:
                        calls = entry[3]
                        count = len(calls)
                        if trace is not None:
                            first_seq = entry[1]
                            trace.extend((timestamp, first_seq + i)
                                         for i in range(count))
                        executed += count
                        consumed += count
                        for fn, args in calls:
                            fn(*args)
                        continue
                    # Detach: a late cancel() on an already-fired event must
                    # not perturb the cancelled-entry bookkeeping.
                    marker._scheduler = None
                executed += 1
                consumed += 1
                if trace is not None:
                    trace.append((timestamp, entry[1]))
                kwargs = entry[4]
                if kwargs:
                    entry[2](*entry[3], **kwargs)
                else:
                    entry[2](*entry[3])
            if until is not None and until > clock._now:
                clock.advance_to(until)
        finally:
            if gc_was_enabled:
                gc.enable()
            self._events_executed += executed
            self._live -= consumed

    def run_until_idle(self, max_events: int = 10_000_000) -> None:
        """Run until no events remain.  Guards against runaway simulations."""
        self.run(max_events=max_events)
        if self._heap and self._events_executed >= max_events:
            raise RuntimeError(
                f"simulation did not converge after {max_events} events"
            )
