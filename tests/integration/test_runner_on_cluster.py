"""Closed-loop YCSB load driven against the simulated Cassandra cluster.

These tests exercise the same path the Figure 6/7/8 harnesses use — the
workload generator, the closed-loop runner, and the `make_kv_issue`
adapters — and check the relationships the load model is supposed to
guarantee.
"""

import pytest

from repro.bench.common import (
    build_cassandra_scenario,
    cassandra_config_for,
    make_generator_factory,
    make_kv_issue,
    run_multi_region_load,
)
from repro.sim.topology import Region
from repro.workloads.runner import ClosedLoopRunner
from repro.workloads.ycsb import WORKLOAD_A, WORKLOAD_C, workload_by_name

_QUICK = dict(duration_ms=3_000.0, warmup_ms=800.0, cooldown_ms=400.0)


def _single_region_run(system, spec, threads, seed=3):
    scenario = build_cassandra_scenario(
        seed=seed, record_count=100,
        client_regions=(Region.IRL,),
        config=cassandra_config_for(system))
    client = scenario.client_in(Region.IRL)
    runner = ClosedLoopRunner(
        scheduler=scenario.env.scheduler,
        issue=make_kv_issue(client, system),
        make_generator=make_generator_factory(spec, scenario.dataset, seed,
                                              f"itest-{system}"),
        threads=threads, label=f"itest-{system}", **_QUICK)
    result = runner.run()
    return scenario, result


class TestRunnerOnCluster:
    def test_throughput_consistent_with_mean_latency(self):
        _, result = _single_region_run("C2", WORKLOAD_C, threads=2)
        expected = 2 * 1000.0 / result.final_latency.mean()
        assert result.throughput_ops_per_sec() == pytest.approx(expected,
                                                                rel=0.15)

    def test_icg_records_preliminary_latencies_for_reads_only(self):
        _, result = _single_region_run("CC2", WORKLOAD_A, threads=2)
        assert result.preliminary_latency.count == result.read_latency.count
        assert result.preliminary_latency.count < result.measured_ops
        assert result.preliminary_latency.mean() < result.read_latency.mean()

    def test_baseline_records_no_preliminaries_or_divergence(self):
        _, result = _single_region_run("C2", WORKLOAD_A, threads=2)
        assert result.preliminary_latency.count == 0
        assert result.divergence.total == 0

    def test_divergence_compared_only_for_icg_reads(self):
        _, result = _single_region_run("CC2", WORKLOAD_A, threads=2)
        assert result.divergence.total == result.read_latency.count

    def test_read_only_workload_on_single_client_never_diverges(self):
        # With no writers anywhere, preliminary and final views always agree.
        _, result = _single_region_run("CC2", WORKLOAD_C, threads=3)
        assert result.divergence.diverged == 0
        assert result.divergence.total > 0

    def test_multi_region_load_returns_result_per_region(self):
        scenario = build_cassandra_scenario(
            seed=5, record_count=100,
            client_regions=(Region.IRL, Region.FRK, Region.VRG),
            config=cassandra_config_for("CC2"))
        results = run_multi_region_load(
            scenario, "CC2", workload_by_name("A"), threads_per_client=2,
            seed=5, **_QUICK)
        assert set(results) == {Region.IRL, Region.FRK, Region.VRG}
        for result in results.values():
            assert result.measured_ops > 0
            assert result.final_latency.mean() > 0

    def test_same_seed_reproduces_identical_metrics(self):
        _, first = _single_region_run("CC2", WORKLOAD_A, threads=2, seed=9)
        _, second = _single_region_run("CC2", WORKLOAD_A, threads=2, seed=9)
        assert first.measured_ops == second.measured_ops
        assert first.final_latency.mean() == pytest.approx(
            second.final_latency.mean())
        assert first.divergence.diverged == second.divergence.diverged
